package commsim

import (
	"errors"
	"math/rand/v2"
	"testing"

	"graphsketch/internal/codec"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/obs"
	"graphsketch/internal/sketch"
	"graphsketch/internal/workload"
)

func TestSpanningProtocolMatchesSingleMachine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	h := workload.ErdosRenyi(rng, 20, 0.25)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 77

	referee := sketch.NewSpanning(seed, dom, cfg)
	res, err := Run(h, func() Protocol { return sketch.NewSpanning(seed, dom, cfg) }, referee)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBytes == 0 {
		t.Fatal("no communication happened")
	}

	// The referee's decode must match a single-machine sketch of h.
	direct := sketch.NewSpanning(seed, dom, cfg)
	if err := direct.UpdateGraph(h, 1); err != nil {
		t.Fatal(err)
	}
	fRef, err := referee.SpanningGraph()
	if err != nil {
		t.Fatal(err)
	}
	fDir, err := direct.SpanningGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !fRef.Equal(fDir) {
		t.Fatal("referee decode differs from single-machine decode")
	}
	// And it must be a valid spanning graph.
	dh := graphalg.ComponentsOf(h)
	df := graphalg.ComponentsOf(fRef)
	for u := 0; u < h.N(); u++ {
		for v := u + 1; v < h.N(); v++ {
			if dh.Same(u, v) != df.Same(u, v) {
				t.Fatal("protocol spanning graph has wrong connectivity")
			}
		}
	}
}

func TestSkeletonProtocol(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	h := workload.ErdosRenyi(rng, 12, 0.4)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 99

	referee := sketch.NewSkeleton(seed, dom, 2, cfg)
	if _, err := Run(h, func() Protocol { return sketch.NewSkeleton(seed, dom, 2, cfg) }, referee); err != nil {
		t.Fatal(err)
	}
	skel, err := referee.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range skel.Edges() {
		if !h.Has(e) {
			t.Fatalf("protocol skeleton fabricated edge %v", e)
		}
	}
}

func TestReconstructProtocolPaperExample(t *testing.T) {
	// Full end-to-end of the paper's referee story: players send
	// O(d polylog n) bits each, the referee reconstructs the
	// 2-cut-degenerate example exactly.
	h := workload.PaperExample()
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 13

	mk := func() *reconstruct.Sketch {
		s, err := reconstruct.New(reconstruct.Params{N: dom.N(), R: dom.R(), K: 2, Spanning: cfg, Seed: seed})
		if err != nil {
			panic(err)
		}
		return s
	}
	referee := mk()
	res, err := Run(h, func() Protocol { return mk() }, referee)
	if err != nil {
		t.Fatal(err)
	}
	got, err := referee.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(h) {
		t.Fatal("referee failed to reconstruct the paper example")
	}
	t.Logf("max message %d bytes, total %d bytes", res.MaxMessageBytes, res.TotalBytes)
}

func TestFramedSizesIncludeEnvelope(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	h := workload.ErdosRenyi(rng, 10, 0.3)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 21

	referee := sketch.NewSpanning(seed, dom, cfg)
	res, err := Run(h, func() Protocol { return sketch.NewSpanning(seed, dom, cfg) }, referee)
	if err != nil {
		t.Fatal(err)
	}
	// One envelope per player, nothing else: framed − interior must be
	// exactly n·ShareOverhead (and the same per-message).
	if got, want := res.EnvelopeBytes(), res.Players*codec.ShareOverhead; got != want {
		t.Fatalf("envelope bytes %d, want %d", got, want)
	}
	if got, want := res.FramedMaxMessageBytes, res.MaxMessageBytes+codec.ShareOverhead; got != want {
		t.Fatalf("framed max %d, want %d", got, want)
	}
	// Interior sizes are the paper-faithful raw shares.
	direct := sketch.NewSpanning(seed, dom, cfg)
	if err := direct.UpdateGraph(h, 1); err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < h.N(); v++ {
		total += len(direct.VertexShare(v))
	}
	if res.TotalBytes != total {
		t.Fatalf("interior total %d, want raw share total %d", res.TotalBytes, total)
	}
}

func TestRefereeRejectsCrossSeedShares(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	rejected := obs.Default().Counter("commsim_shares_rejected_total", "")
	before := rejected.Value()

	rng := rand.New(rand.NewPCG(7, 8))
	h := workload.ErdosRenyi(rng, 10, 0.3)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}

	// Players run under different public randomness than the referee: every
	// share frame must be refused with the typed fingerprint error (before
	// the framed format this silently merged to garbage), and the rejection
	// must be visible on the commsim_shares_rejected_total counter.
	referee := sketch.NewSpanning(1, dom, cfg)
	_, err := Run(h, func() Protocol { return sketch.NewSpanning(2, dom, cfg) }, referee)
	if !errors.Is(err, codec.ErrFingerprint) {
		t.Fatalf("cross-seed run: got %v, want codec.ErrFingerprint", err)
	}
	if got := rejected.Value() - before; got != 1 {
		t.Fatalf("commsim_shares_rejected_total advanced by %d, want 1", got)
	}

	// A same-seed run on the same registry must not advance the counter.
	referee2 := sketch.NewSpanning(3, dom, cfg)
	if _, err := Run(h, func() Protocol { return sketch.NewSpanning(3, dom, cfg) }, referee2); err != nil {
		t.Fatal(err)
	}
	if got := rejected.Value() - before; got != 1 {
		t.Fatalf("clean run advanced commsim_shares_rejected_total to %d, want 1", got)
	}
}

func TestMessageSizeTracksDegree(t *testing.T) {
	// A star: the hub's message should be the largest.
	n := 16
	h := graph.NewGraph(n)
	for v := 1; v < n; v++ {
		h.AddSimple(0, v)
	}
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 5

	sizes := make([]int, n)
	for v := 0; v < n; v++ {
		p := sketch.NewSpanning(seed, dom, cfg)
		for _, e := range h.Edges() {
			if e.Contains(v) {
				if err := p.Update(e, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		sizes[v] = len(p.VertexShare(v))
	}
	for v := 1; v < n; v++ {
		if sizes[0] < sizes[v] {
			t.Fatalf("hub message (%d) smaller than leaf %d (%d)", sizes[0], v, sizes[v])
		}
	}
}
