package commsim

import "graphsketch/internal/obs"

// Communication-simulation counters: messages exchanged (one per player)
// and their serialized volume, the quantities the paper's communication
// bounds are stated in.
var cm struct {
	messages    *obs.Counter // commsim_messages_total
	bytes       *obs.Counter // commsim_message_bytes_total
	framedBytes *obs.Counter // commsim_framed_bytes_total
	rejected    *obs.Counter // commsim_shares_rejected_total
}

func init() {
	obs.OnEnable(func(r *obs.Registry) {
		cm.messages = r.Counter("commsim_messages_total",
			"Player-to-referee messages simulated")
		cm.bytes = r.Counter("commsim_message_bytes_total",
			"Serialized interior bytes of all simulated messages")
		cm.framedBytes = r.Counter("commsim_framed_bytes_total",
			"Framed bytes of all simulated messages, codec envelope included")
		cm.rejected = r.Counter("commsim_shares_rejected_total",
			"Share frames the referee rejected (fingerprint or frame decode failure)")
	})
}
