// Package commsim simulates the simultaneous communication model of Becker
// et al. that the paper frames its sketches in (Section 2): n players
// P_1, …, P_n and a referee Q. Player P_v's input is the set of hyperedges
// incident to vertex v; all players share public random bits (here: the
// sketch seed); each player sends one message to Q, and Q must compute the
// answer from the n messages alone.
//
// The simulation is the shard plane (internal/shardplane) in its
// finest-grained configuration: a MemberTransport with one width-1 shard
// per vertex routes each hyperedge to exactly its endpoints' players, and
// the share-framed gather delivers each player's one message to the
// referee. Because every sketch in this repository is vertex-based, player
// P_v evaluates exactly vertex v's share of the sketch from its own input,
// and the referee reassembles the full sketch by linear merging. Messages
// travel as codec share frames — the envelope's fingerprint is how the
// referee detects a player operating under different public randomness
// (codec.ErrFingerprint) instead of merging garbage — and the run reports
// both the paper-faithful interior sizes (the share bytes the
// communication bounds are stated in) and the framed totals including
// envelope overhead. The same Transport contract scaled the other way
// (vertex ranges over TCP) is the cmd/gsd cluster; commsim is the model,
// the cluster is the deployment.
package commsim

import (
	"fmt"

	"graphsketch/internal/codec"
	"graphsketch/internal/graph"
	"graphsketch/internal/shardplane"
)

// Protocol is a vertex-based sketch viewed as a one-round protocol: a
// player instance consumes the updates incident to its vertex
// (range-restricted, as a shard-plane member) and emits its framed vertex
// share; a referee instance verifies and absorbs share frames. All
// sketches in internal/sketch and internal/core satisfy this.
type Protocol interface {
	Update(e graph.Hyperedge, delta int64) error
	UpdateBatch(batch []graph.WeightedEdge) error
	// UpdateBatchRange applies the batch restricted to endpoints in
	// [lo, hi) — the player-side ingest surface of the shard plane.
	UpdateBatchRange(batch []graph.WeightedEdge, lo, hi int) error
	// VertexShareFrame frames vertex v's share with the sketch's identity
	// fingerprint (codec.KindShare).
	VertexShareFrame(v int) []byte
	// AddVertexShareFrame verifies one share frame from the front of data
	// — rejecting cross-identity frames with codec.ErrFingerprint — and
	// merges it, returning the remaining bytes.
	AddVertexShareFrame(data []byte) ([]byte, error)
}

// Result reports the communication cost of a run. MaxMessageBytes and
// TotalBytes count share interiors only — the sketch bytes the paper's
// communication bounds are stated in. The Framed fields additionally count
// the codec envelope (codec.ShareOverhead per message) that a deployed
// protocol actually puts on the wire.
type Result struct {
	Players         int
	MaxMessageBytes int
	TotalBytes      int
	// FramedMaxMessageBytes and FramedTotalBytes include the per-message
	// envelope: framed = interior + codec.ShareOverhead.
	FramedMaxMessageBytes int
	FramedTotalBytes      int
}

// MeanMessageBytes returns the average interior message size.
func (r Result) MeanMessageBytes() float64 {
	if r.Players == 0 {
		return 0
	}
	return float64(r.TotalBytes) / float64(r.Players)
}

// EnvelopeBytes returns the total envelope overhead of the run.
func (r Result) EnvelopeBytes() int { return r.FramedTotalBytes - r.TotalBytes }

// Run executes the protocol on hypergraph h: one fresh player sketch per
// vertex (same public randomness — newPlayer must construct
// identically-seeded instances) receives exactly the hyperedges incident
// to its vertex, frames its share, and the referee verifies and merges
// every frame. After Run returns, the referee holds precisely the sketch
// of h and can be decoded by the caller. A player whose public randomness
// differs from the referee's is rejected with codec.ErrFingerprint rather
// than silently corrupting the merge; rejections are counted in
// commsim_shares_rejected_total.
//
// Correctness relies on linearity: each hyperedge e is routed to |e|
// players, player P_v accumulates only vertex v's samplers, and the merged
// referee state equals the single-machine sketch of h.
func Run(h *graph.Hypergraph, newPlayer func() Protocol, referee Protocol) (Result, error) {
	n := h.N()
	res := Result{Players: n}
	tr, err := shardplane.NewMembers(n, n, func() (shardplane.ShareMember, error) {
		return newPlayer(), nil
	})
	if err != nil {
		return res, fmt.Errorf("commsim: %w", err)
	}
	defer tr.Close()
	if err := tr.Route(h.WeightedEdges()); err != nil {
		return res, fmt.Errorf("commsim: %w", err)
	}
	st, gatherErr := tr.GatherShares(referee)

	// The model's accounting, interior = framed − envelope per message.
	res.FramedTotalBytes = int(st.FramedBytes)
	res.FramedMaxMessageBytes = st.MaxFramedBytes
	res.TotalBytes = res.FramedTotalBytes - st.Messages*codec.ShareOverhead
	if st.MaxFramedBytes > 0 {
		res.MaxMessageBytes = st.MaxFramedBytes - codec.ShareOverhead
	}
	cm.messages.Add(int64(st.Messages))
	cm.bytes.Add(int64(res.TotalBytes))
	cm.framedBytes.Add(st.FramedBytes)
	if gatherErr != nil {
		cm.rejected.Inc()
		return res, fmt.Errorf("commsim: referee: %w", gatherErr)
	}
	return res, nil
}
