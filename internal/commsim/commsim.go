// Package commsim simulates the simultaneous communication model of Becker
// et al. that the paper frames its sketches in (Section 2): n players
// P_1, …, P_n and a referee Q. Player P_v's input is the set of hyperedges
// incident to vertex v; all players share public random bits (here: the
// sketch seed); each player sends one message to Q, and Q must compute the
// answer from the n messages alone.
//
// Because every sketch in this repository is vertex-based, player P_v can
// evaluate exactly vertex v's share of the sketch from its own input, and
// the referee reassembles the full sketch by linear merging. The simulation
// actually serializes each message to bytes and reports the maximum and
// total message sizes — the protocol's cost measure.
package commsim

import (
	"fmt"

	"graphsketch/internal/graph"
)

// Protocol is a vertex-based sketch viewed as a one-round protocol: a
// player instance consumes its incident edges (as one batch, matching the
// unified graphsketch.Updater API) and emits its vertex share; a referee
// instance absorbs shares. All sketches in internal/sketch and
// internal/core satisfy this.
type Protocol interface {
	Update(e graph.Hyperedge, delta int64) error
	UpdateBatch(batch []graph.WeightedEdge) error
	VertexShare(v int) []byte
	AddVertexShare(v int, data []byte) error
}

// Result reports the communication cost of a run.
type Result struct {
	Players         int
	MaxMessageBytes int
	TotalBytes      int
}

// MeanMessageBytes returns the average message size.
func (r Result) MeanMessageBytes() float64 {
	if r.Players == 0 {
		return 0
	}
	return float64(r.TotalBytes) / float64(r.Players)
}

// Run executes the protocol on hypergraph h: for each vertex v a fresh
// player sketch (same public randomness — newPlayer must construct
// identically-seeded instances) receives exactly the hyperedges incident to
// v, serializes its share of vertex v, and the referee merges it. After Run
// returns, the referee holds precisely the sketch of h and can be decoded
// by the caller.
//
// Correctness relies on linearity: each hyperedge e is fed to |e| players,
// but player P_v's share of vertex v only accumulates v's own samplers, so
// the merged referee state equals the single-machine sketch of h.
func Run(h *graph.Hypergraph, newPlayer func() Protocol, referee Protocol) (Result, error) {
	n := h.N()
	res := Result{Players: n}
	// Incidence lists.
	inc := make([][]graph.WeightedEdge, n)
	for _, we := range h.WeightedEdges() {
		for _, v := range we.E {
			inc[v] = append(inc[v], we)
		}
	}
	for v := 0; v < n; v++ {
		player := newPlayer()
		if err := player.UpdateBatch(inc[v]); err != nil {
			return res, fmt.Errorf("commsim: player %d: %w", v, err)
		}
		msg := player.VertexShare(v)
		if len(msg) > res.MaxMessageBytes {
			res.MaxMessageBytes = len(msg)
		}
		res.TotalBytes += len(msg)
		cm.messages.Inc()
		cm.bytes.Add(int64(len(msg)))
		if err := referee.AddVertexShare(v, msg); err != nil {
			return res, fmt.Errorf("commsim: referee merging player %d: %w", v, err)
		}
	}
	return res, nil
}
