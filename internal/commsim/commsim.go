// Package commsim simulates the simultaneous communication model of Becker
// et al. that the paper frames its sketches in (Section 2): n players
// P_1, …, P_n and a referee Q. Player P_v's input is the set of hyperedges
// incident to vertex v; all players share public random bits (here: the
// sketch seed); each player sends one message to Q, and Q must compute the
// answer from the n messages alone.
//
// Because every sketch in this repository is vertex-based, player P_v can
// evaluate exactly vertex v's share of the sketch from its own input, and
// the referee reassembles the full sketch by linear merging. The simulation
// serializes each message as a codec share frame — the envelope's
// fingerprint is how the referee detects a player operating under different
// public randomness (codec.ErrFingerprint) instead of merging garbage — and
// reports both the paper-faithful interior sizes (the share bytes the
// communication bounds are stated in) and the framed totals including
// envelope overhead.
package commsim

import (
	"fmt"

	"graphsketch/internal/codec"
	"graphsketch/internal/graph"
)

// Protocol is a vertex-based sketch viewed as a one-round protocol: a
// player instance consumes its incident edges (as one batch, matching the
// unified graphsketch.Updater API) and emits its vertex share; a referee
// instance absorbs shares. Messages travel as codec share frames
// (VertexShareFrame / AddVertexShareFrame); the raw interior accessors
// remain for in-process use and size accounting. All sketches in
// internal/sketch and internal/core satisfy this.
type Protocol interface {
	Update(e graph.Hyperedge, delta int64) error
	UpdateBatch(batch []graph.WeightedEdge) error
	VertexShare(v int) []byte
	AddVertexShare(v int, data []byte) error
	// VertexShareFrame frames vertex v's share with the sketch's identity
	// fingerprint (codec.KindShare).
	VertexShareFrame(v int) []byte
	// AddVertexShareFrame verifies one share frame from the front of data
	// — rejecting cross-identity frames with codec.ErrFingerprint — and
	// merges it, returning the remaining bytes.
	AddVertexShareFrame(data []byte) ([]byte, error)
}

// Result reports the communication cost of a run. MaxMessageBytes and
// TotalBytes count share interiors only — the sketch bytes the paper's
// communication bounds are stated in. The Framed fields additionally count
// the codec envelope (codec.ShareOverhead per message) that a deployed
// protocol actually puts on the wire.
type Result struct {
	Players         int
	MaxMessageBytes int
	TotalBytes      int
	// FramedMaxMessageBytes and FramedTotalBytes include the per-message
	// envelope: framed = interior + codec.ShareOverhead.
	FramedMaxMessageBytes int
	FramedTotalBytes      int
}

// MeanMessageBytes returns the average interior message size.
func (r Result) MeanMessageBytes() float64 {
	if r.Players == 0 {
		return 0
	}
	return float64(r.TotalBytes) / float64(r.Players)
}

// EnvelopeBytes returns the total envelope overhead of the run.
func (r Result) EnvelopeBytes() int { return r.FramedTotalBytes - r.TotalBytes }

// Run executes the protocol on hypergraph h: for each vertex v a fresh
// player sketch (same public randomness — newPlayer must construct
// identically-seeded instances) receives exactly the hyperedges incident to
// v, frames its share of vertex v, and the referee verifies and merges the
// frame. After Run returns, the referee holds precisely the sketch of h and
// can be decoded by the caller. A player whose public randomness differs
// from the referee's is rejected with codec.ErrFingerprint rather than
// silently corrupting the merge.
//
// Correctness relies on linearity: each hyperedge e is fed to |e| players,
// but player P_v's share of vertex v only accumulates v's own samplers, so
// the merged referee state equals the single-machine sketch of h.
func Run(h *graph.Hypergraph, newPlayer func() Protocol, referee Protocol) (Result, error) {
	n := h.N()
	res := Result{Players: n}
	// Incidence lists.
	inc := make([][]graph.WeightedEdge, n)
	for _, we := range h.WeightedEdges() {
		for _, v := range we.E {
			inc[v] = append(inc[v], we)
		}
	}
	for v := 0; v < n; v++ {
		player := newPlayer()
		if err := player.UpdateBatch(inc[v]); err != nil {
			return res, fmt.Errorf("commsim: player %d: %w", v, err)
		}
		msg := player.VertexShareFrame(v)
		interior := len(msg) - codec.ShareOverhead
		if interior > res.MaxMessageBytes {
			res.MaxMessageBytes = interior
		}
		res.TotalBytes += interior
		if len(msg) > res.FramedMaxMessageBytes {
			res.FramedMaxMessageBytes = len(msg)
		}
		res.FramedTotalBytes += len(msg)
		cm.messages.Inc()
		cm.bytes.Add(int64(interior))
		cm.framedBytes.Add(int64(len(msg)))
		rest, err := referee.AddVertexShareFrame(msg)
		if err != nil {
			return res, fmt.Errorf("commsim: referee merging player %d: %w", v, err)
		}
		if len(rest) != 0 {
			return res, fmt.Errorf("commsim: player %d message carries %d trailing bytes", v, len(rest))
		}
	}
	return res, nil
}
