// Package bench provides the small experiment-harness utilities shared by
// cmd/experiments and the root benchmark suite: aligned table rendering,
// value formatting, and simple accuracy counters.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled, column-aligned text table. The experiment harness
// prints one table per reproduced theorem.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FmtFloat(v, 3)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FmtFloat formats a float with the given precision, trimming trailing
// zeros for readability.
func FmtFloat(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}

// FmtBytes renders a byte count with a binary unit.
func FmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return FmtFloat(float64(b)/(1<<20), 1) + " MiB"
	case b >= 1<<10:
		return FmtFloat(float64(b)/(1<<10), 1) + " KiB"
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// FmtPercent renders a ratio as a percentage.
func FmtPercent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return FmtFloat(100*float64(num)/float64(den), 1) + "%"
}

// Counter tallies successes over trials.
type Counter struct {
	Hits, Trials int
}

// Observe records one trial.
func (c *Counter) Observe(hit bool) {
	c.Trials++
	if hit {
		c.Hits++
	}
}

// String renders "hits/trials (pct)".
func (c Counter) String() string {
	return fmt.Sprintf("%d/%d (%s)", c.Hits, c.Trials, FmtPercent(c.Hits, c.Trials))
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first) for
// downstream plotting; cells containing commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// SlugTitle returns a filesystem-friendly slug of the table title, for CSV
// file naming.
func (t *Table) SlugTitle() string {
	var b strings.Builder
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteRune('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
