package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Note = "a note"
	tb.AddRow("alpha", 1)
	tb.AddRow("a-much-longer-name", 3.14159)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a note", "alpha", "a-much-longer-name", "3.142"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Columns align: every data line has the same prefix width up to the
	// second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	header := lines[2]
	col2 := strings.Index(header, "value")
	if col2 < 0 {
		t.Fatalf("no value column: %q", header)
	}
	for _, l := range lines[4:] {
		if len(l) <= col2 {
			t.Fatalf("row shorter than header: %q", l)
		}
	}
}

func TestFmtFloatTrimsZeros(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{1.5, 3, "1.5"},
		{2.0, 3, "2"},
		{0.125, 3, "0.125"},
		{0.1, 0, "0"},
	}
	for _, c := range cases {
		if got := FmtFloat(c.v, c.prec); got != c.want {
			t.Errorf("FmtFloat(%v,%d) = %q, want %q", c.v, c.prec, got, c.want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{512, "512 B"},
		{2048, "2 KiB"},
		{3 << 20, "3 MiB"},
	}
	for _, c := range cases {
		if got := FmtBytes(c.in); got != c.want {
			t.Errorf("FmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFmtPercent(t *testing.T) {
	if got := FmtPercent(1, 4); got != "25%" {
		t.Errorf("FmtPercent = %q", got)
	}
	if got := FmtPercent(1, 0); got != "n/a" {
		t.Errorf("FmtPercent zero denominator = %q", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Observe(true)
	c.Observe(false)
	c.Observe(true)
	if c.Hits != 2 || c.Trials != 3 {
		t.Fatalf("counter state %+v", c)
	}
	if got := c.String(); !strings.Contains(got, "2/3") {
		t.Fatalf("String = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("E7 — demo, with commas", "a", "b")
	tb.AddRow("x,y", 2)
	tb.AddRow(`q"z`, 3)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"x,y\",2\n\"q\"\"z\",3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
	if slug := tb.SlugTitle(); slug != "e7-demo-with-commas" {
		t.Fatalf("slug = %q", slug)
	}
}
