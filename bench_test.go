// Benchmarks, one per experiment (E1–E10 in DESIGN.md): each exercises the
// full pipeline a theorem's experiment runs — stream ingestion, decode, and
// verification — so `go test -bench=.` both times the system and re-checks
// the claims at benchmark scale. The printed tables come from
// cmd/experiments; these benches are the machine-readable counterpart.
package graphsketch_test

import (
	"bytes"
	"io"
	"math/rand/v2"
	"net"
	"testing"

	"graphsketch/internal/codec"
	"graphsketch/internal/commsim"
	"graphsketch/internal/core/edgeconn"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/engine"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hybrid"
	"graphsketch/internal/obs"
	"graphsketch/internal/oracle"
	"graphsketch/internal/shardplane"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// BenchmarkE1VertexConnQuery times the Theorem 4 pipeline: stream a
// k-connected graph with churn, build H, answer a separator query.
func BenchmarkE1VertexConnQuery(b *testing.B) {
	n, k := 24, 3
	h := workload.MustHarary(n, k)
	rng := rand.New(rand.NewPCG(1, 1))
	st := stream.WithChurn(h, workload.ErdosRenyi(rng, n, 0.3), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := vertexconn.New(vertexconn.Params{N: n, K: k, Subgraphs: 48, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.Apply(st, s); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Disconnects(map[int]bool{1: true, 3: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2IndexReduction times Bob's side of the Theorem 5 INDEX
// protocol: completing the stream and decoding one bit.
func BenchmarkE2IndexReduction(b *testing.B) {
	k, nR := 2, 16
	rng := rand.New(rand.NewPCG(2, 2))
	bits := make([][]bool, k+1)
	for i := range bits {
		bits[i] = make([]bool, nR)
		for j := range bits[i] {
			bits[i][j] = rng.IntN(2) == 1
		}
	}
	alice := workload.IndexBipartite(func(i, j int) bool { return bits[i][j] }, k, nR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := vertexconn.New(vertexconn.Params{N: alice.N(), K: k, Subgraphs: 32, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.Apply(stream.FromGraph(alice), s); err != nil {
			b.Fatal(err)
		}
		for j := 1; j < nR; j++ {
			if err := s.Update(graph.MustEdge(k+1+j-1, k+1+j), 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Disconnects(map[int]bool{0: true, 1: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3VertexConnEstimate times the Theorem 8 estimator end to end.
func BenchmarkE3VertexConnEstimate(b *testing.B) {
	n, k := 24, 2
	h := workload.MustHarary(n, 2*k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := vertexconn.New(vertexconn.Params{N: n, K: k, Subgraphs: 64, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.Apply(stream.FromGraph(h), s); err != nil {
			b.Fatal(err)
		}
		got, err := s.EstimateConnectivity(int64(k))
		if err != nil {
			b.Fatal(err)
		}
		if got < int64(k) {
			b.Fatalf("estimate %d below k=%d on a %d-connected graph", got, k, 2*k)
		}
	}
}

// BenchmarkE4HypergraphSpanning times the Theorem 13 hypergraph
// connectivity sketch under deletion churn.
func BenchmarkE4HypergraphSpanning(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	n := 32
	final := workload.UniformHypergraph(rng, n, 3, 3*n)
	st := stream.WithChurn(final, workload.UniformHypergraph(rng, n, 3, 3*n), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sketch.NewSpanning(uint64(i), final.Domain(), sketch.SpanningConfig{})
		if err := stream.Apply(st, s); err != nil {
			b.Fatal(err)
		}
		if _, err := s.SpanningGraph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Skeleton times Theorem 14 skeleton construction and decode.
func BenchmarkE5Skeleton(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	n, k := 16, 3
	h := workload.ErdosRenyi(rng, n, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := sketch.NewSkeleton(uint64(i), h.Domain(), k, sketch.SpanningConfig{})
		if err := sk.UpdateGraph(h, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := sk.Skeleton(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Reconstruct times Theorem 15 reconstruction of the paper's
// Lemma 10 example.
func BenchmarkE6Reconstruct(b *testing.B) {
	h := workload.PaperExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := reconstruct.New(reconstruct.Params{N: h.N(), R: h.Domain().R(), K: 2, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.UpdateGraph(h, 1); err != nil {
			b.Fatal(err)
		}
		got, err := s.Reconstruct()
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(h) {
			b.Fatal("reconstruction differs")
		}
	}
}

// BenchmarkE7Sparsifier times the Theorem 19/20 sparsifier pipeline.
func BenchmarkE7Sparsifier(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 14
	h := workload.ErdosRenyi(rng, n, 0.8)
	st := stream.FromGraph(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sparsify.New(sparsify.Params{N: n, K: 6, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.Apply(st, s); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Sparsifier(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8InsertOnlyBaseline times the Eppstein et al. filter on the
// adversarial stream (the work is dominated by its per-insert flow checks —
// the cost the sketch avoids).
func BenchmarkE8InsertOnlyBaseline(b *testing.B) {
	n, k := 16, 3
	target := workload.MustHarary(n, k)
	st := stream.InsertDeleteInsert(workload.Complete(n), target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := graphalg.NewEppsteinFilter(n, int64(k))
		for _, u := range st {
			var err error
			if u.Op == stream.Insert {
				_, err = f.Insert(u.Edge[0], u.Edge[1])
			} else {
				err = f.Delete(u.Edge[0], u.Edge[1])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		_ = f.VertexConnectivity()
	}
}

// BenchmarkE9Communication times a full simultaneous-communication round:
// n players serialize shares, the referee merges and decodes.
func BenchmarkE9Communication(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	h := workload.ErdosRenyi(rng, 32, 0.2)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)
		ref := sketch.NewSpanning(seed, dom, cfg)
		if _, err := commsim.Run(h, func() commsim.Protocol { return sketch.NewSpanning(seed, dom, cfg) }, ref); err != nil {
			b.Fatal(err)
		}
		if _, err := ref.SpanningGraph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Ablations times the (invalid) reused-sketch peeling loop that
// the Section 4.2 ablation studies.
func BenchmarkE10Ablations(b *testing.B) {
	h := workload.Complete(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := sketch.NewSpanning(uint64(i), h.Domain(), sketch.SpanningConfig{})
		if err := sp.UpdateGraph(h, 1); err != nil {
			b.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			f, err := sp.SpanningGraph()
			if err != nil || f.EdgeCount() == 0 {
				break
			}
			if err := sp.UpdateGraph(f, -1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE11Extensions times the E11 extension pipelines: edge
// connectivity from a skeleton sketch plus guess-and-double κ estimation.
func BenchmarkE11Extensions(b *testing.B) {
	h := workload.MustHarary(16, 4)
	for i := 0; i < b.N; i++ {
		ec, err := edgeconn.New(edgeconn.Params{N: h.N(), R: h.Domain().R(), K: 6, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := ec.UpdateGraph(h, 1); err != nil {
			b.Fatal(err)
		}
		lambda, _, err := ec.EdgeConnectivity()
		if err != nil {
			b.Fatal(err)
		}
		if lambda != 4 {
			b.Fatalf("λ = %d, want 4", lambda)
		}
		est, err := vertexconn.NewEstimator(vertexconn.EstimatorParams{N: 16, KMax: 4, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.Apply(stream.FromGraph(h), est); err != nil {
			b.Fatal(err)
		}
		if _, err := est.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelWorkload builds the E1-style ingestion workload at benchmark
// scale: a k-connected Harary graph streamed with Erdős–Rényi churn,
// returned as one update batch.
func parallelWorkload(n, k int, seed uint64) []graph.WeightedEdge {
	rng := rand.New(rand.NewPCG(seed, 1))
	st := stream.WithChurn(workload.MustHarary(n, k), workload.ErdosRenyi(rng, n, 0.4), rng)
	batch := make([]graph.WeightedEdge, len(st))
	for i, u := range st {
		batch[i] = graph.WeightedEdge{E: u.Edge, W: int64(u.Op)}
	}
	return batch
}

// BenchmarkParallelIngest compares serial UpdateBatch against the sharded
// worker pool on the E1 vertex-connectivity sketch. With GOMAXPROCS >= 4 the
// parallel path is expected to be >= 2x the serial throughput: every edge
// update is a pair of independent per-endpoint sampler writes, so the vertex
// shards proceed without locks.
func BenchmarkParallelIngest(b *testing.B) {
	const n, k = 96, 3
	batch := parallelWorkload(n, k, 1)
	s, err := vertexconn.New(vertexconn.Params{N: n, K: k, Subgraphs: 48, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(batch)))
		for i := 0; i < b.N; i++ {
			if err := s.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		eng := engine.New(s, engine.Options{})
		defer eng.Close()
		b.SetBytes(int64(len(batch)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Same path with metrics collection on but trace recording off
	// (SetTraceSampling(0), the enabled-but-unsampled mode): every batch
	// pays the clock reads, shard counters, and span histogram, while the
	// flight recorder stays out of the hot path. The acceptance bar is
	// <= 3% over the plain parallel sub-benchmark.
	b.Run("parallel-obs", func(b *testing.B) {
		obs.Enable()
		obs.SetTraceSampling(0)
		defer func() {
			obs.SetTraceSampling(1)
			obs.Disable()
		}()
		eng := engine.New(s, engine.Options{})
		defer eng.Close()
		b.SetBytes(int64(len(batch)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelDecode compares the serial skeleton peel against the
// engine's fan-out decode (concurrent layer clones and forest broadcasts)
// on a k-skeleton of the E1 workload graph.
func BenchmarkParallelDecode(b *testing.B) {
	const n, k = 64, 8
	h := workload.MustHarary(n, k)
	sk := sketch.NewSkeleton(3, h.Domain(), k, sketch.SpanningConfig{})
	if err := sk.UpdateGraph(h, 1); err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.Skeleton(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.DecodeSkeleton(sk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckpointWrite times emitting a framed checkpoint (params
// encoding, state serialization, CRC) of an ingested k-skeleton — the write
// half of the wire format added with the codec layer.
func BenchmarkCheckpointWrite(b *testing.B) {
	const n, k = 64, 8
	h := workload.MustHarary(n, k)
	sk := sketch.NewSkeleton(3, h.Domain(), k, sketch.SpanningConfig{})
	if err := sk.UpdateGraph(h, 1); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRead times the restart path: codec.Open reconstructs
// the sketch from the frame alone (header verification, params decode,
// construction, state merge).
func BenchmarkCheckpointRead(b *testing.B) {
	const n, k = 64, 8
	h := workload.MustHarary(n, k)
	sk := sketch.NewSkeleton(3, h.Domain(), k, sketch.SpanningConfig{})
	if err := sk.UpdateGraph(h, 1); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Open(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}

// sparseBatch builds the PR7 sparse workload: a power-law graph whose
// average degree (4) sits well below the hybrid's exact-buffer capacity
// (budget/2 = 16 entries), shuffled into an insert-only update batch.
func sparseBatch(n int, seed uint64) []graph.WeightedEdge {
	rng := rand.New(rand.NewPCG(seed, 0x5350))
	st := stream.Shuffled(stream.FromGraph(workload.SparsePowerLaw(rng, n, 4, 2.5)), rng)
	batch := make([]graph.WeightedEdge, len(st))
	for i, u := range st {
		batch[i] = graph.WeightedEdge{E: u.Edge, W: int64(u.Op)}
	}
	return batch
}

// sparseHybrid builds the hybrid-over-spanning sketch the sparse benchmarks
// measure against a pure spanning sketch of identical construction.
func sparseHybrid(b *testing.B, n, budget int) (*sketch.SpanningSketch, *hybrid.Sketch) {
	b.Helper()
	pure, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: n, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	inner, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: n, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	hy, err := hybrid.New(inner, budget)
	if err != nil {
		b.Fatal(err)
	}
	return pure, hy
}

// BenchmarkSparseIngest is the PR7 headline comparison: ingesting a sparse
// power-law stream into the pure spanning sketch versus the hybrid
// exact/sketch wrapper. Nearly every update lands in a small sorted buffer
// instead of fanning out across log n rounds of sampler rows, so the
// acceptance bar is >= 5x lower ns/op AND >= 5x fewer state words
// (reported as the custom 'state-words' unit, captured by benchjson).
func BenchmarkSparseIngest(b *testing.B) {
	const n, budget = 1024, 32
	batch := sparseBatch(n, 1)
	pure, hy := sparseHybrid(b, n, budget)
	b.Run("pure", func(b *testing.B) {
		b.SetBytes(int64(len(batch)))
		for i := 0; i < b.N; i++ {
			if err := pure.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(pure.Words()-pure.SharedWords()), "state-words")
	})
	b.Run("hybrid", func(b *testing.B) {
		b.SetBytes(int64(len(batch)))
		for i := 0; i < b.N; i++ {
			if err := hy.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(hy.StateWords()), "state-words")
	})
}

// BenchmarkSparseDecode compares spanning decode on the same sparse
// workload: the pure sketch draws samplers per Boruvka merge, while the
// hybrid answers components of unspilled vertices directly from exact
// buffers (the power-law hubs still exercise the mixed path).
func BenchmarkSparseDecode(b *testing.B) {
	const n, budget = 1024, 32
	batch := sparseBatch(n, 1)
	pure, hy := sparseHybrid(b, n, budget)
	if err := pure.UpdateBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := hy.UpdateBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.Run("pure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pure.SpanningGraph(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hy.SpanningGraph(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSparseChurnIngest stresses the hybrid's worst case: churn waves
// that drive vertex degrees across the spill boundary, so a fraction of the
// stream pays both the buffer bookkeeping and the sketch forwarding.
func BenchmarkSparseChurnIngest(b *testing.B) {
	const n, budget = 1024, 32
	rng := rand.New(rand.NewPCG(3, 0x5351))
	st := workload.BoundaryChurnStream(rng, workload.SparsePowerLaw(rng, n, 4, 2.5), budget/2, 2)
	batch := make([]graph.WeightedEdge, len(st))
	for i, u := range st {
		batch[i] = graph.WeightedEdge{E: u.Edge, W: int64(u.Op)}
	}
	_, hy := sparseHybrid(b, n, budget)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hy.UpdateBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hy.SpilledCount()), "spilled-vertices")
}

// oracleBench streams the E1 workload into a vertex-connectivity sketch
// and wraps it in the query oracle; both oracle benchmarks share it so
// warm-vs-cold measures only the cache discipline.
func oracleBench(b *testing.B) *oracle.Oracle {
	b.Helper()
	n, k := 24, 3
	h := workload.MustHarary(n, k)
	rng := rand.New(rand.NewPCG(1, 1))
	st := stream.WithChurn(h, workload.ErdosRenyi(rng, n, 0.3), rng)
	s, err := vertexconn.New(vertexconn.Params{N: n, K: k, Subgraphs: 48, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	if err := stream.Apply(st, s); err != nil {
		b.Fatal(err)
	}
	return oracle.ForVertexConn(s)
}

// BenchmarkOracleConnectedWarm times Connected on a warm epoch cache: the
// priming query pays the one decode, every timed iteration is two flat
// component-array lookups. The PR6 acceptance bar is >= 100x over
// BenchmarkOracleDecodePerQuery.
func BenchmarkOracleConnectedWarm(b *testing.B) {
	orc := oracleBench(b)
	if _, err := orc.Connected(0, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orc.Connected(i%24, (i*7+1)%24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleDecodePerQuery is the counterfactual the oracle replaces:
// a net-zero update pair before every query dirties the sketch (as any
// real mutation batch would), so each Connected pays the full BuildH
// decode — the per-query cost every caller paid before PR6.
func BenchmarkOracleDecodePerQuery(b *testing.B) {
	orc := oracleBench(b)
	e := graph.MustEdge(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := orc.Update(e, 1); err != nil {
			b.Fatal(err)
		}
		if err := orc.Update(e, -1); err != nil {
			b.Fatal(err)
		}
		if _, err := orc.Connected(i%24, (i*7+1)%24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterIngest prices the shard-plane transports against each
// other on the same spanning-sketch churn workload: LocalTransport pays a
// channel hop per shard per batch, the 3-shard TCP loopback cluster pays a
// codec frame, a syscall round trip, and an ack per shard per batch. The
// resulting states are byte-identical either way (the three-way
// equivalence test pins that); this benchmark pins what the wire costs.
func BenchmarkClusterIngest(b *testing.B) {
	const n = 96
	batch := parallelWorkload(n, 3, 1)

	b.Run("local", func(b *testing.B) {
		s, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.NewWithTransport(shardplane.NewLocal(s, shardplane.Options{}))
		defer eng.Close()
		b.SetBytes(int64(len(batch)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("tcp", func(b *testing.B) {
		proto, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var addrs []string
		for i := 0; i < 3; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := shardplane.NewServer(ln)
			go srv.Serve()
			defer srv.Close()
			addrs = append(addrs, ln.Addr().String())
		}
		tr, err := shardplane.DialTCP(proto, addrs, shardplane.TCPOptions{})
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.NewWithTransport(tr)
		defer eng.Close()
		b.SetBytes(int64(len(batch)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
