// Randomized cross-check harness: generates random dynamic streams and
// validates every core sketch against offline ground truth in one loop.
// This is the catch-all net for seam bugs the targeted tests don't reach —
// every iteration draws a fresh workload shape, churn level, and seed.
package graphsketch_test

import (
	"math/rand/v2"
	"testing"

	"graphsketch/internal/core/edgeconn"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// randomWorkload draws a final graph and a churn graph of a random family.
func randomWorkload(rng *rand.Rand) (final, churn *graph.Hypergraph) {
	n := 10 + rng.IntN(8)
	switch rng.IntN(5) {
	case 0:
		final = workload.ErdosRenyi(rng, n, 0.2+0.4*rng.Float64())
	case 1:
		final = workload.MustHarary(n, 2+rng.IntN(3))
	case 2:
		final = workload.UniformHypergraph(rng, n, 3, 2*n+rng.IntN(2*n))
	case 3:
		final = workload.CliqueTree(rng, 3, 3+rng.IntN(2))
	default:
		final = workload.PreferentialAttachment(rng, n, 1+rng.IntN(2))
	}
	if final.R() > 2 {
		churn = workload.MixedHypergraph(rng, final.N(), final.R(), final.EdgeCount())
	} else {
		churn = workload.ErdosRenyi(rng, final.N(), 0.3)
	}
	return final, churn
}

func TestCrossCheckRandomizedStreams(t *testing.T) {
	iterations := 12
	if testing.Short() {
		iterations = 4
	}
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewPCG(uint64(iter), 0xc05c))
		final, churn := randomWorkload(rng)
		var st stream.Stream
		if rng.IntN(2) == 0 {
			st = stream.WithChurn(final, churn, rng)
		} else {
			var seq []graph.Hyperedge
			for _, e := range churn.Edges() {
				if !final.Has(e) {
					seq = append(seq, e)
				}
			}
			seq = append(seq, final.Edges()...)
			st = stream.SlidingWindow(seq, final.EdgeCount())
		}
		// The stream must materialize to the workload; if not, the
		// generator (not a sketch) is broken.
		got, err := stream.Materialize(st, final.N(), final.R())
		if err != nil || !got.Equal(final) {
			t.Fatalf("iter %d: stream does not materialize (%v)", iter, err)
		}

		// 1. Connectivity via spanning sketch.
		sp := sketch.NewSpanning(uint64(iter), final.Domain(), sketch.SpanningConfig{})
		if err := stream.Apply(st, sp); err != nil {
			t.Fatal(err)
		}
		f, err := sp.SpanningGraph()
		if err != nil {
			t.Fatalf("iter %d: spanning decode: %v", iter, err)
		}
		da, db := graphalg.ComponentsOf(final), graphalg.ComponentsOf(f)
		if da.Components() != db.Components() {
			t.Fatalf("iter %d: components %d vs %d", iter, db.Components(), da.Components())
		}
		for _, e := range f.Edges() {
			if !final.Has(e) {
				t.Fatalf("iter %d: fabricated edge %v", iter, e)
			}
		}

		// 2. Edge connectivity via skeleton, vs MA-ordering and Karger.
		kCap := 5
		ec, err := edgeconn.New(edgeconn.Params{N: final.N(), R: final.Domain().R(), K: kCap, Seed: uint64(iter) + 99})
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.Apply(st, ec); err != nil {
			t.Fatal(err)
		}
		lambdaHat, _, err := ec.EdgeConnectivity()
		if err != nil {
			t.Fatalf("iter %d: edgeconn decode: %v", iter, err)
		}
		trueLambda, _, err := graphalg.GlobalMinCutAll(final)
		if err != nil {
			t.Fatal(err)
		}
		karger, _ := graphalg.KargerMinCut(final, 150, rng)
		if karger < trueLambda {
			t.Fatalf("iter %d: Karger %d below MA-ordering %d — one of them is wrong", iter, karger, trueLambda)
		}
		want := trueLambda
		if want > int64(kCap) {
			want = int64(kCap)
		}
		if lambdaHat != want {
			t.Fatalf("iter %d: λ̂ = %d, want %d", iter, lambdaHat, want)
		}

		// 3. Vertex connectivity estimate never exceeds truth (graphs).
		if final.R() == 2 {
			vc, err := vertexconn.New(vertexconn.Params{
				N: final.N(), K: 3, Subgraphs: 64, Seed: uint64(iter) + 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := stream.Apply(st, vc); err != nil {
				t.Fatal(err)
			}
			est, err := vc.EstimateConnectivity(3)
			if err != nil {
				t.Fatalf("iter %d: vconn decode: %v", iter, err)
			}
			trueK := graphalg.VertexConnectivity(final, 3)
			if est > trueK {
				t.Fatalf("iter %d: κ̂ = %d > κ = %d", iter, est, trueK)
			}
		}
	}
}
