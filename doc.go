// Package graphsketch is a Go implementation of "Vertex and Hyperedge
// Connectivity in Dynamic Graph Streams" (Guha, McGregor, Tench; PODS
// 2015): linear sketches for vertex connectivity, cut-degenerate hypergraph
// reconstruction, and hypergraph cut sparsification over streams of
// hyperedge insertions and deletions.
//
// This root package declares the interfaces every sketch in the library
// satisfies: Updater (Update / UpdateBatch), Mergeable, Sketch (adds Words,
// Marshal, and Unmarshal), and Sharded — the contract that lets
// internal/engine ingest updates through a lock-free vertex-sharded worker
// pool and decode with fan-out, with results byte-identical to serial
// execution — plus the query-serving side: Querier (Connected(u,v) answered
// from an epoch-cached snapshot in O(α(n))) and Oracle (adds vertex-cut
// DisconnectedBy and the Epoch counter), implemented by internal/oracle
// for the spanning, skeleton, vertex-connectivity, edge-connectivity, and
// sparsifier sketches. Constructors across the library follow one
// convention: a Params struct whose zero fields receive sound defaults,
// returning (*Sketch, error); incompatibilities and decode failures are
// reported via sentinel errors (graphsketch.ErrMergeMismatch,
// graphsketch.ErrStaleDecode, graphsketch.ErrVertexRange,
// sketch.ErrDecodeFailed, sketch.ErrSeedMismatch, sketch.ErrDomainMismatch,
// sketch.ErrConfigMismatch) for errors.Is branching.
//
// The contracts, from narrowest to widest:
//
//	Updater    Update, UpdateBatch            one ±1 update / amortized batch
//	Mergeable  Merge                          add an identically-parameterized sketch
//	Sketch     Updater + Mergeable + Words, Marshal, Unmarshal
//	Sharded    Sketch + NumVertices, UpdateBatchRange   parallel-ingestion contract
//	Checkpointer  Sketch + WriteTo, ReadFrom     framed wire-format checkpoints
//	Querier    Connected                      pairwise reachability, epoch-cached
//	Oracle     Querier + DisconnectedBy, Epoch          vertex-cut queries, staleness
//
// The implementation lives under internal/:
//
//   - internal/core/vertexconn — Section 3: vertex-connectivity query
//     structures (Theorem 4) and estimators (Theorem 8)
//   - internal/core/reconstruct — Section 4: light_k and cut-degenerate
//     reconstruction (Theorem 15) plus the Becker et al. baseline
//   - internal/core/sparsify — Section 5: hypergraph sparsifiers
//     (Theorems 19/20)
//   - internal/sketch — the AGM spanning-graph sketch generalized to
//     hypergraphs (Theorem 13) and k-skeletons (Theorem 14)
//   - internal/oracle — the concurrent query-serving layer: epoch-cached
//     decode, single-flight rebuild, DSU connectivity answers
//   - internal/engine — parallel ingestion (vertex-sharded worker pool)
//     and parallel skeleton decode
//   - internal/l0, internal/recovery, internal/field, internal/hashutil —
//     the sparse-recovery substrate
//   - internal/graph, internal/graphalg — hypergraph types and offline
//     algorithms (flows, cuts, connectivity, strength)
//   - internal/stream, internal/workload, internal/commsim — the dynamic
//     stream model, workload generators, and the simultaneous
//     communication model
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the per-theorem experimental results. The benchmarks
// in bench_test.go regenerate one experiment pipeline per theorem;
// cmd/experiments prints the full tables.
package graphsketch
