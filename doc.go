// Package graphsketch is a Go implementation of "Vertex and Hyperedge
// Connectivity in Dynamic Graph Streams" (Guha, McGregor, Tench; PODS
// 2015): linear sketches for vertex connectivity, cut-degenerate hypergraph
// reconstruction, and hypergraph cut sparsification over streams of
// hyperedge insertions and deletions.
//
// The implementation lives under internal/:
//
//   - internal/core/vertexconn — Section 3: vertex-connectivity query
//     structures (Theorem 4) and estimators (Theorem 8)
//   - internal/core/reconstruct — Section 4: light_k and cut-degenerate
//     reconstruction (Theorem 15) plus the Becker et al. baseline
//   - internal/core/sparsify — Section 5: hypergraph sparsifiers
//     (Theorems 19/20)
//   - internal/sketch — the AGM spanning-graph sketch generalized to
//     hypergraphs (Theorem 13) and k-skeletons (Theorem 14)
//   - internal/l0, internal/recovery, internal/field, internal/hashutil —
//     the sparse-recovery substrate
//   - internal/graph, internal/graphalg — hypergraph types and offline
//     algorithms (flows, cuts, connectivity, strength)
//   - internal/stream, internal/workload, internal/commsim — the dynamic
//     stream model, workload generators, and the simultaneous
//     communication model
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the per-theorem experimental results. The benchmarks
// in bench_test.go regenerate one experiment pipeline per theorem;
// cmd/experiments prints the full tables.
package graphsketch
