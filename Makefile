GO ?= go

.PHONY: all build vet test race bench bench-json bench-diff codec-check \
	obs-check cluster-check fmt-check ci lint lint-gsvet lint-staticcheck \
	lint-govulncheck lint-timing lint-json

# Benchmark knobs for bench-json: runs to average and time per run.
# CI smoke uses BENCHTIME=1x; real measurements want the defaults or more.
BENCHCOUNT ?= 1
BENCHTIME ?= 1s

# Pinned external linter versions. The module is dependency-free and must
# build offline, so these cannot live as go.mod tool directives; the pins
# live here and CI runs them via `go run pkg@version` (LINT_ONLINE=1).
# Offline, a locally installed binary is used when present and the step is
# skipped (with a notice) otherwise — gsvet, the in-tree invariant suite,
# always runs.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
LINT_ONLINE ?= 0

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark pipeline per experiment plus the parallel ingest/decode
# comparisons; -benchtime=1x keeps this a smoke run (drop it to measure).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Full-measurement benchmarks emitted as machine-readable JSON, with
# improvement percentages against the checked-in PR8 results when present
# (the ingest/decode/oracle numbers must stay within noise of them; PR9
# adds BenchmarkClusterIngest, pricing the LocalTransport channel hop
# against the 3-shard TCP loopback wire). Raise BENCHCOUNT (e.g. 5) for
# stable numbers.
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark(E|Parallel|Checkpoint|Oracle|Sparse|Cluster)' -benchmem \
		-count $(BENCHCOUNT) -benchtime $(BENCHTIME) . \
	| $(GO) run ./cmd/benchjson -out BENCH_pr9.json \
		-baseline BENCH_pr8.json \
		-label "PR9 transport-agnostic shard plane (count=$(BENCHCOUNT))"

# Per-benchmark ns/op and allocs/op deltas between the previous PR's
# checked-in numbers and the current run (make bench-json first). Fails
# when any benchmark regresses more than BENCH_FAIL_OVER percent; CI runs
# this as a soft gate (annotated, non-blocking) since single-run numbers
# are noisy — use BENCHCOUNT=5 before trusting a failure.
BENCH_FAIL_OVER ?= 3
bench-diff:
	$(GO) run ./cmd/benchjson -diff -fail-over=$(BENCH_FAIL_OVER) \
		BENCH_pr8.json BENCH_pr9.json

# Wire-format gate: the codec corruption/round-trip suite and the root
# checkpoint conformance harness under the race detector, plus a fuzz smoke
# of both codec targets (go test accepts one -fuzz pattern per run, hence
# two invocations).
codec-check:
	$(GO) test -race ./internal/codec/ ./internal/cli/
	$(GO) test -race -run 'TestCheckpoint' .
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 10s ./internal/codec/
	$(GO) test -run '^$$' -fuzz FuzzCodecDecode -fuzztime 10s ./internal/codec/

# Race-enabled run of the concurrency-sensitive packages plus the obs
# endpoint smoke test — the fast loop CI runs on every push (race over the
# whole module is the `race` target). The doc-drift test fails when a
# registered metric family or /debug/* endpoint is missing from the
# IMPLEMENTATION.md observability tables.
obs-check:
	$(GO) test -race ./internal/engine/ ./internal/obs/ ./internal/oracle/ ./internal/hybrid/
	$(GO) test -run 'TestObsEndpointSmoke|TestObsDocDrift' ./cmd/experiments/

# Cluster gate: the shard-plane suite under the race detector — wire
# round trips, the three-way serial/local/TCP equivalence, server protocol
# rejection, the kill-and-restore drills (in-process and real gsd shard
# processes), and the genstream loadgen end-to-end. Everything runs on
# loopback with ephemeral ports; no external services.
cluster-check:
	$(GO) test -race ./internal/shardplane/
	$(GO) test -race -run 'TestGSD|TestGenstreamLoadgen' ./internal/cli/

fmt-check:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

# Static analysis gate: the in-tree invariant suite (cmd/gsvet —
# mapdeterminism, seeddiscipline, obshandles, checkpointopener,
# epochguard, spanend, transportclose, plus the CFG-backed lockatomic,
# errsentinel, and goroutineleak) plus the pinned external linters. gsvet
# needs only the Go toolchain and always runs; see the version pins above
# for the external-tool gating.
lint: lint-gsvet lint-staticcheck lint-govulncheck

lint-gsvet:
	$(GO) run ./cmd/gsvet ./...

# Machine-readable findings (including suppressed ones, for the audit
# trail); CI uploads the file as an artifact. Not a gate — `make lint`
# blocks on live findings, this step records them even when it fails.
LINT_JSON ?= gsvet.json
lint-json:
	$(GO) run ./cmd/gsvet -json ./... > $(LINT_JSON) || true
	@echo "lint: findings written to $(LINT_JSON)"

# Wall-clock budget for the module-wide gsvet run (seconds). The CFG +
# dataflow analyzers must stay cheap enough for the edit loop; the budget
# is generous against CI jitter but catches an accidental quadratic blowup.
LINT_BUDGET ?= 120
lint-timing:
	@start=$$(date +%s); \
	$(GO) run ./cmd/gsvet ./... >/dev/null; \
	end=$$(date +%s); took=$$((end - start)); \
	echo "lint-timing: gsvet module run took $${took}s (budget $(LINT_BUDGET)s)"; \
	if [ $$took -gt $(LINT_BUDGET) ]; then \
		echo "lint-timing: budget exceeded"; exit 1; fi

lint-staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ "$(LINT_ONLINE)" = "1" ]; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) not installed and LINT_ONLINE != 1; skipping"; \
	fi

lint-govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif [ "$(LINT_ONLINE)" = "1" ]; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "lint: govulncheck $(GOVULNCHECK_VERSION) not installed and LINT_ONLINE != 1; skipping"; \
	fi

ci: fmt-check vet lint build test race codec-check cluster-check bench
