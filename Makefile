GO ?= go

.PHONY: all build vet test race bench fmt-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark pipeline per experiment plus the parallel ingest/decode
# comparisons; -benchtime=1x keeps this a smoke run (drop it to measure).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt-check vet build test race bench
