GO ?= go

.PHONY: all build vet test race bench bench-json codec-check fmt-check ci

# Benchmark knobs for bench-json: runs to average and time per run.
# CI smoke uses BENCHTIME=1x; real measurements want the defaults or more.
BENCHCOUNT ?= 1
BENCHTIME ?= 1s

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark pipeline per experiment plus the parallel ingest/decode
# comparisons; -benchtime=1x keeps this a smoke run (drop it to measure).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Full-measurement benchmarks emitted as machine-readable JSON, with
# improvement percentages against the checked-in PR2 results when present
# (the obs-disabled numbers must stay within noise of them; parallel-obs
# shows the <= 5% enabled overhead). Raise BENCHCOUNT (e.g. 5) for stable
# numbers.
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark(E|Parallel|Checkpoint)' -benchmem \
		-count $(BENCHCOUNT) -benchtime $(BENCHTIME) . \
	| $(GO) run ./cmd/benchjson -out BENCH_pr4.json \
		-baseline BENCH_pr3.json \
		-label "PR4 versioned wire codec (count=$(BENCHCOUNT))"

# Wire-format gate: the codec corruption/round-trip suite and the root
# checkpoint conformance harness under the race detector, plus a fuzz smoke
# of both codec targets (go test accepts one -fuzz pattern per run, hence
# two invocations).
codec-check:
	$(GO) test -race ./internal/codec/ ./internal/cli/
	$(GO) test -race -run 'TestCheckpoint' .
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 10s ./internal/codec/
	$(GO) test -run '^$$' -fuzz FuzzCodecDecode -fuzztime 10s ./internal/codec/

# Race-enabled run of the concurrency-sensitive packages plus the obs
# endpoint smoke test — the fast loop CI runs on every push (race over the
# whole module is the `race` target).
obs-check:
	$(GO) test -race ./internal/engine/ ./internal/obs/
	$(GO) test -run TestObsEndpointSmoke ./cmd/experiments/

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt-check vet build test race codec-check bench
