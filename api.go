package graphsketch

import (
	"errors"
	"io"

	"graphsketch/internal/graph"
)

// ErrMergeMismatch is returned by Merge when the argument is not a sketch of
// the same concrete type as the receiver. Finer-grained incompatibilities
// (seed, domain, or shape differences between two sketches of the same type)
// are reported by the per-package sentinels, e.g. sketch.ErrSeedMismatch.
var ErrMergeMismatch = errors.New("graphsketch: cannot merge sketches of different types")

// ErrStaleDecode is returned (wrapped) by Querier and Oracle methods when a
// query cannot be served because rebuilding the cached snapshot failed: the
// sketch's decode budget was exhausted (sketch.ErrDecodeFailed under the
// wrap) and no fresh snapshot exists for the current epoch. The sketch state
// itself is intact — more updates may make decode succeed again, or the
// sketch was under-provisioned for the stream (raise Rounds or the sampler
// shape). Callers distinguish this operational condition from programmer
// errors (ErrVertexRange, merge mismatches) with errors.Is.
var ErrStaleDecode = errors.New("graphsketch: snapshot rebuild failed, serving would use a stale decode")

// ErrVertexRange is returned by Querier and Oracle methods when a query
// names a vertex outside the sketch's vertex space [0, n).
var ErrVertexRange = errors.New("graphsketch: query vertex out of range")

// Updater consumes weighted hyperedge updates. A deletion is an update with
// negative weight; every sketch in this repository is linear, so updates in
// any order and grouping produce the same state.
//
// UpdateBatch applies a slice of updates in order. It is semantically
// identical to calling Update once per element, but lets implementations
// amortize hashing and dispatch, and is the unit of work the parallel
// ingestion engine (internal/engine) shards across workers.
type Updater interface {
	Update(e graph.Hyperedge, delta int64) error
	UpdateBatch(batch []graph.WeightedEdge) error
}

// Mergeable combines two sketches of the same type, seed, and shape by
// linear addition: after s.Merge(o), s holds the sketch of the union
// (multiset sum) of the two input streams. Merge returns ErrMergeMismatch
// when o has a different concrete type, and a per-package sentinel
// (sketch.ErrSeedMismatch, sketch.ErrDomainMismatch, sketch.ErrConfigMismatch)
// when the types match but the instances were constructed incompatibly.
type Mergeable interface {
	Merge(o Sketch) error
}

// Sketch is the interface every linear graph sketch in this repository
// implements: the five paper structures (sketch.SpanningSketch,
// sketch.SkeletonSketch, edgeconn.Sketch, vertexconn.Sketch,
// vertexconn.Estimator) plus reconstruct.Sketch and sparsify.Sketch.
//
//   - Update / UpdateBatch ingest the dynamic stream.
//   - Merge adds another identically-constructed sketch (distributed
//     aggregation).
//   - Words reports the memory footprint in 64-bit words (the paper's space
//     measure).
//   - Marshal emits the raw, unversioned state bytes — the legacy escape
//     hatch. WARNING: raw state carries no identity: parameters and seeds
//     are NOT serialized, there is no version, checksum, or mismatch
//     detection, and bytes fed to Unmarshal on a differently-constructed
//     instance silently decode to garbage. Durable or transported state
//     should use the framed format instead: Checkpointer (WriteTo/ReadFrom)
//     and codec.Open wrap exactly these bytes in a self-describing,
//     checksummed envelope that verifies identity before merging. Marshal
//     remains useful in-process, where both endpoints are known to share
//     construction — it is the compact interior of a checkpoint frame.
//   - Unmarshal restores (by linear addition) contents produced by Marshal
//     on an identically-constructed sketch. Calling it on a non-empty
//     sketch adds the two states, which is itself meaningful by linearity.
//     The same no-identity warning as Marshal applies; prefer Checkpointer.
type Sketch interface {
	Updater
	Mergeable
	Words() int
	Marshal() []byte
	Unmarshal(data []byte) error
}

// Checkpointer is a Sketch that can durably checkpoint and restore itself
// through the versioned wire format (internal/codec). WriteTo emits one
// self-describing frame: magic, format version, structure type tag,
// params+seed identity fingerprint, the construction parameters themselves,
// the Marshal state, and a checksum. ReadFrom reads such a frame back,
// verifying that the frame's fingerprint matches the receiver's before
// merging the state linearly (an exact restore when the receiver is fresh);
// a frame from a differently-constructed sketch fails with
// codec.ErrFingerprint instead of silently mis-merging.
//
// Because checkpoint frames embed their parameters, codec.Open can
// reconstruct the sketch from the frame alone — no out-of-band construction
// — which is the intended restart path.
//
// All seven Sketch implementations satisfy Checkpointer.
type Checkpointer interface {
	Sketch
	io.WriterTo
	io.ReaderFrom
}

// Sharded is a Sketch whose state is partitioned by vertex: vertex v's share
// (its sampler stacks) is written only by updates applied at v. This is the
// property the parallel ingestion engine exploits — workers owning disjoint
// vertex ranges can apply the same batch concurrently without locks.
//
// UpdateBatchRange applies only the [lo, hi) slice of every update's
// per-vertex work: for each edge in the batch, exactly the endpoints v with
// lo ≤ v < hi are updated. Applying a batch over a partition of [0, n)
// must yield exactly the state of UpdateBatch over the whole batch,
// regardless of which range runs first or concurrently.
//
// Contract for implementations: any state not owned by a single vertex
// (e.g. a decoded-result cache) must be written only by the call whose range
// contains vertex 0, so that a partition of [0, n) performs the write
// exactly once and no two ranges race on it.
type Sharded interface {
	Sketch
	// NumVertices returns n, the exclusive upper bound of the vertex space
	// the sketch shards over.
	NumVertices() int
	// UpdateBatchRange applies the batch restricted to endpoints in
	// [lo, hi).
	UpdateBatchRange(batch []graph.WeightedEdge, lo, hi int) error
}

// Querier answers pairwise connectivity queries against the most recent
// decoded snapshot of a sketch. Update is nanoseconds while decode (BuildH,
// skeleton peeling) is milliseconds, so a serving layer must not decode per
// query; implementations (internal/oracle) cache the decoded spanning
// forest / H behind a monotonic epoch counter, invalidate lazily when
// mutations advance the epoch, and rebuild at most once per dirty epoch.
//
// Connected reports whether u and v are connected in the sketched
// (hyper)graph, answered from the cached snapshot in O(α(n)) — a DSU
// lookup, with no decode on a warm cache. It returns ErrVertexRange for
// vertices outside [0, n) and an ErrStaleDecode-wrapping error when the
// snapshot needed rebuilding and the decode failed.
//
// Implementations are safe for concurrent use: any number of Connected
// callers may race with each other and with mutations through the same
// oracle.
type Querier interface {
	Connected(u, v int) (bool, error)
}

// Oracle is the full query-serving surface over a sketch: pairwise
// connectivity plus vertex-cut queries, both against the same cached
// snapshot.
//
// DisconnectedBy reports whether removing the vertex set S (drop-incident
// semantics: every hyperedge touching S is removed) disconnects the
// sketched graph's surviving vertices. Against a vertexconn.Sketch
// snapshot this is the paper's Theorem 4 query — exact w.h.p. for
// |S| ≤ K; against a spanning-forest or skeleton snapshot it is one-sided
// (the snapshot is a sparse certificate of G, so a "still connected"
// answer may miss paths of G outside the certificate).
//
// Epoch returns the current mutation epoch: it advances on every mutation
// through the oracle, and a snapshot is served only while its recorded
// epoch matches — the staleness contract the epochguard lint enforces.
type Oracle interface {
	Querier
	DisconnectedBy(remove []int) (bool, error)
	Epoch() uint64
}
