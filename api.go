package graphsketch

import (
	"errors"
	"io"

	"graphsketch/internal/graph"
)

// ErrMergeMismatch is returned by Merge when the argument is not a sketch of
// the same concrete type as the receiver. Finer-grained incompatibilities
// (seed, domain, or shape differences between two sketches of the same type)
// are reported by the per-package sentinels, e.g. sketch.ErrSeedMismatch.
var ErrMergeMismatch = errors.New("graphsketch: cannot merge sketches of different types")

// Updater consumes weighted hyperedge updates. A deletion is an update with
// negative weight; every sketch in this repository is linear, so updates in
// any order and grouping produce the same state.
//
// UpdateBatch applies a slice of updates in order. It is semantically
// identical to calling Update once per element, but lets implementations
// amortize hashing and dispatch, and is the unit of work the parallel
// ingestion engine (internal/engine) shards across workers.
type Updater interface {
	Update(e graph.Hyperedge, delta int64) error
	UpdateBatch(batch []graph.WeightedEdge) error
}

// Mergeable combines two sketches of the same type, seed, and shape by
// linear addition: after s.Merge(o), s holds the sketch of the union
// (multiset sum) of the two input streams. Merge returns ErrMergeMismatch
// when o has a different concrete type, and a per-package sentinel
// (sketch.ErrSeedMismatch, sketch.ErrDomainMismatch, sketch.ErrConfigMismatch)
// when the types match but the instances were constructed incompatibly.
type Mergeable interface {
	Merge(o Sketch) error
}

// Sketch is the interface every linear graph sketch in this repository
// implements: the five paper structures (sketch.SpanningSketch,
// sketch.SkeletonSketch, edgeconn.Sketch, vertexconn.Sketch,
// vertexconn.Estimator) plus reconstruct.Sketch and sparsify.Sketch.
//
//   - Update / UpdateBatch ingest the dynamic stream.
//   - Merge adds another identically-constructed sketch (distributed
//     aggregation).
//   - Words reports the memory footprint in 64-bit words (the paper's space
//     measure).
//   - Marshal emits the raw, unversioned state bytes — the legacy escape
//     hatch. WARNING: raw state carries no identity: parameters and seeds
//     are NOT serialized, there is no version, checksum, or mismatch
//     detection, and bytes fed to Unmarshal on a differently-constructed
//     instance silently decode to garbage. Durable or transported state
//     should use the framed format instead: Checkpointer (WriteTo/ReadFrom)
//     and codec.Open wrap exactly these bytes in a self-describing,
//     checksummed envelope that verifies identity before merging. Marshal
//     remains useful in-process, where both endpoints are known to share
//     construction — it is the compact interior of a checkpoint frame.
type Sketch interface {
	Updater
	Mergeable
	Words() int
	Marshal() []byte
}

// Unmarshaler restores (by linear addition) sketch contents produced by
// Marshal on an identically-constructed sketch. Calling it on a non-empty
// sketch adds the two states, which is itself meaningful by linearity.
// The same no-identity warning as Marshal applies; prefer Checkpointer.
type Unmarshaler interface {
	Unmarshal(data []byte) error
}

// Checkpointer is a Sketch that can durably checkpoint and restore itself
// through the versioned wire format (internal/codec). WriteTo emits one
// self-describing frame: magic, format version, structure type tag,
// params+seed identity fingerprint, the construction parameters themselves,
// the Marshal state, and a checksum. ReadFrom reads such a frame back,
// verifying that the frame's fingerprint matches the receiver's before
// merging the state linearly (an exact restore when the receiver is fresh);
// a frame from a differently-constructed sketch fails with
// codec.ErrFingerprint instead of silently mis-merging.
//
// Because checkpoint frames embed their parameters, codec.Open can
// reconstruct the sketch from the frame alone — no out-of-band construction
// — which is the intended restart path.
//
// All seven Sketch implementations satisfy Checkpointer.
type Checkpointer interface {
	Sketch
	io.WriterTo
	io.ReaderFrom
}

// Sharded is a Sketch whose state is partitioned by vertex: vertex v's share
// (its sampler stacks) is written only by updates applied at v. This is the
// property the parallel ingestion engine exploits — workers owning disjoint
// vertex ranges can apply the same batch concurrently without locks.
//
// UpdateBatchRange applies only the [lo, hi) slice of every update's
// per-vertex work: for each edge in the batch, exactly the endpoints v with
// lo ≤ v < hi are updated. Applying a batch over a partition of [0, n)
// must yield exactly the state of UpdateBatch over the whole batch,
// regardless of which range runs first or concurrently.
//
// Contract for implementations: any state not owned by a single vertex
// (e.g. a decoded-result cache) must be written only by the call whose range
// contains vertex 0, so that a partition of [0, n) performs the write
// exactly once and no two ranges race on it.
type Sharded interface {
	Sketch
	// NumVertices returns n, the exclusive upper bound of the vertex space
	// the sketch shards over.
	NumVertices() int
	// UpdateBatchRange applies the batch restricted to endpoints in
	// [lo, hi).
	UpdateBatchRange(batch []graph.WeightedEdge, lo, hi int) error
}
