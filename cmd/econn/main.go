// Command econn answers edge-connectivity questions about a dynamic
// hypergraph stream using a k-skeleton sketch: the global minimum cut
// (exact below k, with a witness side), k-edge-connectivity decisions, and
// capped s–t cuts.
//
// Examples:
//
//	econn -n 64 -k 8 < stream.txt
//	econn -n 64 -k 8 -st 3,17 < stream.txt
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunEconn(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "econn: %v\n", err)
		os.Exit(1)
	}
}
