// Command sparsify builds a (1+ε) cut sparsifier of a dynamic hypergraph
// stream (Theorems 19/20) and writes the weighted hyperedges to stdout as
// lines "weight v1 v2 [v3 ...]".
//
// Example:
//
//	sparsify -n 64 -r 3 -eps 0.5 < stream.txt > sparsifier.txt
//
// Pass -K to set the strength threshold directly instead of deriving it
// from ε via the paper's K = ⌈ε⁻²(log2 n + r)⌉.
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunSparsify(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "sparsify: %v\n", err)
		os.Exit(1)
	}
}
