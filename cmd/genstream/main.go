// Command genstream emits dynamic-stream files (the format the other
// commands consume) for the workload families used in the experiments.
//
// Examples:
//
//	genstream -family harary -n 64 -k 4 > h.txt
//	genstream -family er -n 100 -p 0.1 -churn 2.0 > er.txt
//	genstream -family uniform -n 64 -r 3 -m 300 -churn 1.0 -window > w.txt
//
// -churn f interleaves f·m transient edges that are inserted and later
// deleted; with -window the transients expire in sliding-window order. The
// stream always materializes to the family's final graph.
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunGenstream(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "genstream: %v\n", err)
		os.Exit(1)
	}
}
