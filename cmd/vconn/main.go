// Command vconn runs the paper's vertex-connectivity sketches over a
// dynamic edge stream read from a file or stdin (format: one update per
// line, "+ u v" / "- u v"; '#' comments).
//
// Examples:
//
//	vconn -n 64 -k 3 -query 4,9,17 < stream.txt
//	    Answer whether removing vertices {4,9,17} disconnects the graph.
//	vconn -n 64 -k 3 -estimate < stream.txt
//	    Estimate the vertex connectivity (capped at k).
//
// -subgraphs 0 selects the paper's Theorem 4 constants; -save/-load
// checkpoint the sketch state between runs.
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunVconn(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "vconn: %v\n", err)
		os.Exit(1)
	}
}
