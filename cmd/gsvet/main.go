// Command gsvet is the repository's invariant multichecker: it runs the
// internal/analysis suite — mapdeterminism, seeddiscipline, obshandles,
// checkpointopener, epochguard, spanend, transportclose — over the module
// and exits nonzero on any finding.
//
// Usage:
//
//	gsvet [-list] [packages]
//
// Packages default to ./... relative to the working directory. Findings
// print as file:line:col: message (analyzer), one per line. Suppress a
// justified false positive with a documented annotation on or directly
// above the flagged line:
//
//	//lint:ignore <analyzer> <reason>
//
// `make lint` runs gsvet alongside staticcheck and govulncheck.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphsketch/internal/analysis"
	"graphsketch/internal/analysis/checkpointopener"
	"graphsketch/internal/analysis/epochguard"
	"graphsketch/internal/analysis/mapdeterminism"
	"graphsketch/internal/analysis/obshandles"
	"graphsketch/internal/analysis/seeddiscipline"
	"graphsketch/internal/analysis/spanend"
	"graphsketch/internal/analysis/transportclose"
)

var suite = []*analysis.Analyzer{
	checkpointopener.Analyzer,
	epochguard.Analyzer,
	mapdeterminism.Analyzer,
	obshandles.Analyzer,
	seeddiscipline.Analyzer,
	spanend.Analyzer,
	transportclose.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsvet:", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		fmt.Printf("gsvet: %d packages clean (%d analyzers)\n", len(pkgs), len(suite))
		return
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "gsvet: %d findings\n", len(diags))
	os.Exit(1)
}
