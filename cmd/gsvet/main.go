// Command gsvet is the repository's invariant multichecker: it runs the
// internal/analysis suite — mapdeterminism, seeddiscipline, obshandles,
// checkpointopener, epochguard, spanend, transportclose, plus the
// CFG-backed lockatomic, errsentinel, and goroutineleak analyzers — over
// the module and exits nonzero on any finding.
//
// Usage:
//
//	gsvet [-list] [-json] [packages]
//
// Packages default to ./... relative to the working directory. Findings
// print as file:line:col: message (analyzer), one per line; with -json
// they print as a JSON array of objects with file, line, col, analyzer,
// message, and suppressed fields (suppressed findings are included so CI
// artifacts record the full audit trail, but only live findings affect
// the exit status). Suppress a justified false positive with a documented
// annotation trailing the flagged line or directly above the flagged
// statement — the annotation covers the statement's full extent:
//
//	//lint:ignore <analyzer> <reason>
//
// `make lint` runs gsvet alongside staticcheck and govulncheck.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsketch/internal/analysis"
	"graphsketch/internal/analysis/checkpointopener"
	"graphsketch/internal/analysis/epochguard"
	"graphsketch/internal/analysis/errsentinel"
	"graphsketch/internal/analysis/goroutineleak"
	"graphsketch/internal/analysis/lockatomic"
	"graphsketch/internal/analysis/mapdeterminism"
	"graphsketch/internal/analysis/obshandles"
	"graphsketch/internal/analysis/seeddiscipline"
	"graphsketch/internal/analysis/spanend"
	"graphsketch/internal/analysis/transportclose"
)

var suite = []*analysis.Analyzer{
	checkpointopener.Analyzer,
	epochguard.Analyzer,
	errsentinel.Analyzer,
	goroutineleak.Analyzer,
	lockatomic.Analyzer,
	mapdeterminism.Analyzer,
	obshandles.Analyzer,
	seeddiscipline.Analyzer,
	spanend.Analyzer,
	transportclose.Analyzer,
}

// jsonFinding is the -json wire shape; field names are part of the CI
// contract (the problem matcher and findings artifact consume them).
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (including suppressed ones) instead of text")
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsvet:", err)
		os.Exit(2)
	}
	all, err := analysis.RunAll(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsvet:", err)
		os.Exit(2)
	}
	live := 0
	for _, f := range all {
		if !f.Suppressed {
			live++
		}
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(all))
		var fset = pkgs[0].Fset
		for _, f := range all {
			pos := fset.Position(f.Pos)
			out = append(out, jsonFinding{
				File:       pos.Filename,
				Line:       pos.Line,
				Col:        pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "gsvet:", err)
			os.Exit(2)
		}
		if live > 0 {
			fmt.Fprintf(os.Stderr, "gsvet: %d findings\n", live)
			os.Exit(1)
		}
		return
	}

	if live == 0 {
		fmt.Printf("gsvet: %d packages clean (%d analyzers)\n", len(pkgs), len(suite))
		return
	}
	fset := pkgs[0].Fset
	for _, f := range all {
		if f.Suppressed {
			continue
		}
		fmt.Printf("%s: %s (%s)\n", fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "gsvet: %d findings\n", live)
	os.Exit(1)
}
