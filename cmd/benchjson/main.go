// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON record, optionally merging a previously captured
// baseline and computing per-benchmark improvement percentages. It is the
// backend of `make bench-json`, which emits the BENCH_*.json files that
// track the repository's performance trajectory PR over PR.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_pr2.json -baseline BENCH_baseline.json
//
// Reading from a file instead of stdin:
//
//	benchjson -in bench.txt -out BENCH_pr2.json
//
// Diff mode compares two previously captured reports benchmark by
// benchmark (ns/op and allocs/op deltas, negative = faster/leaner now)
// and, with -fail-over, exits nonzero when any shared benchmark regressed
// by more than the threshold percentage — the soft regression gate behind
// `make bench-diff`:
//
//	benchjson -diff BENCH_pr7.json BENCH_pr8.json
//	benchjson -diff -fail-over=3 BENCH_pr7.json BENCH_pr8.json
//
// The output schema is
//
//	{
//	  "label": "...",
//	  "benchmarks":  {"<name>": {"ns_op": .., "b_op": .., "allocs_op": .., "iters": ..}},
//	  "baseline":    {... same shape, when -baseline is given ...},
//	  "improvement": {"<name>": {"ns_pct": .., "allocs_pct": ..}}
//	}
//
// where positive percentages mean the current run is better (lower ns/op or
// allocs/op) than the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark measurement. Extra holds custom units emitted
// via testing.B.ReportMetric (e.g. "state-words"), keyed by unit string.
type Result struct {
	Iters    int64              `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op"`
	MBs      float64            `json:"mb_s,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Improvement compares current against baseline; positive = better.
type Improvement struct {
	NsPct     float64 `json:"ns_pct"`
	AllocsPct float64 `json:"allocs_pct"`
}

// Report is the full JSON document.
type Report struct {
	Label       string                 `json:"label,omitempty"`
	Benchmarks  map[string]Result      `json:"benchmarks"`
	Baseline    map[string]Result      `json:"baseline,omitempty"`
	Improvement map[string]Improvement `json:"improvement,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkE5Skeleton-8  	     100	  123456 ns/op	  2345 B/op	   67 allocs/op
//	BenchmarkParallelIngest/serial-8  	 10	  1.5e+06 ns/op	 12.3 MB/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) (map[string]Result, error) {
	// Repeated lines for one benchmark (go test -count N) are averaged.
	sums := make(map[string]Result)
	runs := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		res := Result{}
		res.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "MB/s":
				res.MBs = v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[fields[i+1]] = v
			}
		}
		s := sums[m[1]]
		s.Iters += res.Iters
		s.NsOp += res.NsOp
		s.BOp += res.BOp
		s.AllocsOp += res.AllocsOp
		s.MBs += res.MBs
		for unit, v := range res.Extra {
			if s.Extra == nil {
				s.Extra = make(map[string]float64)
			}
			s.Extra[unit] += v
		}
		sums[m[1]] = s
		runs[m[1]]++
	}
	out := make(map[string]Result, len(sums))
	for name, s := range sums {
		n := runs[name]
		var extra map[string]float64
		if s.Extra != nil {
			extra = make(map[string]float64, len(s.Extra))
			for unit, v := range s.Extra {
				extra[unit] = v / float64(n)
			}
		}
		out[name] = Result{
			Iters:    s.Iters / n,
			NsOp:     s.NsOp / float64(n),
			BOp:      s.BOp / float64(n),
			AllocsOp: s.AllocsOp / float64(n),
			MBs:      s.MBs / float64(n),
			Extra:    extra,
		}
	}
	return out, sc.Err()
}

// pct returns the improvement of cur over base as a percentage of base:
// positive when cur is lower (better). Zero baselines yield 0.
func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - cur) / base
}

// loadReport reads a benchjson -out document back from disk.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("benchjson: bad report %s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("benchjson: %s contains no benchmarks", path)
	}
	return rep, nil
}

// runDiff implements -diff: compare two captured reports benchmark by
// benchmark and return the worst ns/op regression seen (in percent,
// positive = slower now) so the caller can apply -fail-over.
func runDiff(w io.Writer, oldPath, newPath string) (worst float64, worstName string, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, "", err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, "", err
	}
	names := make([]string, 0, len(newRep.Benchmarks))
	for name := range newRep.Benchmarks {
		if _, ok := oldRep.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, "", fmt.Errorf("benchjson: %s and %s share no benchmarks", oldPath, newPath)
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\tdelta\n")
	for _, name := range names {
		ob, nb := oldRep.Benchmarks[name], newRep.Benchmarks[name]
		// pct is improvement-positive; a delta shown to humans reads
		// better as regression-positive ("+4.2%" = slower).
		nsDelta := -pct(ob.NsOp, nb.NsOp)
		allocDelta := -pct(ob.AllocsOp, nb.AllocsOp)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%.1f\t%.1f\t%+.1f%%\n",
			name, ob.NsOp, nb.NsOp, nsDelta, ob.AllocsOp, nb.AllocsOp, allocDelta)
		if nsDelta > worst {
			worst, worstName = nsDelta, name
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, "", err
	}
	skippedOld, skippedNew := len(oldRep.Benchmarks)-len(names), len(newRep.Benchmarks)-len(names)
	if skippedOld > 0 || skippedNew > 0 {
		fmt.Fprintf(w, "(unmatched: %d only in %s, %d only in %s)\n", skippedOld, oldPath, skippedNew, newPath)
	}
	return worst, worstName, nil
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	baselinePath := flag.String("baseline", "", "baseline JSON (a prior benchjson -out) to embed and diff against")
	label := flag.String("label", "", "free-form label recorded in the report")
	diff := flag.Bool("diff", false, "compare two report files: benchjson -diff old.json new.json")
	failOver := flag.Float64("fail-over", 0, "with -diff: exit nonzero when any benchmark's ns/op regressed more than this percentage (0 = never fail)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-fail-over=pct] old.json new.json")
			os.Exit(2)
		}
		worst, worstName, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *failOver > 0 && worst > *failOver {
			fmt.Fprintf(os.Stderr, "benchjson: %s regressed %.1f%% ns/op (threshold %.1f%%)\n", worstName, worst, *failOver)
			os.Exit(1)
		}
		return
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	// Tee the bench output through so the human-readable run stays visible
	// when benchjson sits at the end of a pipe.
	var buf strings.Builder
	benches, err := parse(io.TeeReader(src, &buf))
	if *in == "" {
		fmt.Fprint(os.Stderr, buf.String())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}

	rep := Report{Label: *label, Benchmarks: benches}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		rep.Baseline = base.Benchmarks
		rep.Improvement = make(map[string]Improvement)
		for name, cur := range benches {
			if b, ok := rep.Baseline[name]; ok {
				rep.Improvement[name] = Improvement{
					NsPct:     pct(b.NsOp, cur.NsOp),
					AllocsPct: pct(b.AllocsOp, cur.AllocsOp),
				}
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
