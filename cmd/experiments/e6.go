package main

import (
	"errors"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE6 validates the Section 4 reconstruction results. Part one: Lemma 16
// — light_k(G) computed by the recursive definition equals the set of edges
// with Benczúr–Karger strength ≤ k, on random graphs and hypergraphs. Part
// two: Theorem 15 — the (k+1)-skeleton sketch reconstructs d-cut-degenerate
// graphs exactly, including the paper's 8-vertex Lemma 10 example (which is
// 2-cut-degenerate but has minimum degree 3), while the Becker et al.
// d-degenerate baseline stalls on it at the same budget.
func runE6(cfg Config, out *os.File) error {
	// Part 1: Lemma 16 equivalence.
	t1 := bench.NewTable("E6a — Lemma 16: light_k = {e : strength(e) ≤ k}",
		"family", "r", "k", "agreement")
	rng := hashutil.NewRand(cfg.Seed, 6)
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	for _, fam := range []struct {
		name string
		r    int
	}{{"G(12,.4)", 2}, {"3-uniform", 3}} {
		for _, k := range []int64{1, 2, 3} {
			var agree bench.Counter
			for trial := 0; trial < trials; trial++ {
				var h *hyper
				if fam.r == 2 {
					h = workload.ErdosRenyi(rng, 12, 0.4)
				} else {
					h = workload.UniformHypergraph(rng, 12, 3, 24)
				}
				direct := graphalg.LightEdges(h, k)
				byStrength := graphalg.LightEdgesByStrength(h, k)
				agree.Observe(direct.Equal(byStrength))
			}
			t1.AddRow(fam.name, fam.r, k, agree.String())
		}
	}
	emitTable(t1, out)

	// Part 2: Theorem 15 reconstruction vs the Becker baseline.
	t2 := bench.NewTable("E6b — Theorem 15: cut-degenerate reconstruction vs Becker baseline",
		"graph", "n", "degeneracy", "cut-deg", "budget d", "skeleton sketch", "Becker", "skeleton bytes", "Becker bytes")
	t2.Note = "The paper-example row is the separating instance of Lemma 10: cut-degeneracy 2,\n" +
		"min degree 3 — reconstructible by Theorem 15 at d=2, impossible for Becker at d=2."

	type inst struct {
		name string
		g    *hyper
		d    int
	}
	var instances []inst
	instances = append(instances, inst{"paper example", workload.PaperExample(), 2})
	ctRng := hashutil.NewRand(cfg.Seed, 66)
	instances = append(instances, inst{"clique tree q=4", workload.CliqueTree(ctRng, 5, 4), 3})
	instances = append(instances, inst{"clique tree q=5", workload.CliqueTree(ctRng, 4, 5), 4})

	for _, in := range instances {
		deg := graphalg.Degeneracy(in.g)
		cdeg := graphalg.CutDegeneracy(in.g)

		// Stream with churn through both sketches.
		rng := hashutil.NewRand(cfg.Seed, 67)
		churn := workload.ErdosRenyi(rng, in.g.N(), 0.3)
		st := stream.WithChurn(in.g, churn, rng)

		sk, err := reconstruct.New(reconstruct.Params{
			N: in.g.N(), R: in.g.Domain().R(), K: in.d, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		if err := stream.Apply(st, sk); err != nil {
			return err
		}
		skGot, skErr := sk.Reconstruct()
		skStatus := "FAILED"
		if skErr == nil && skGot.Equal(in.g) {
			skStatus = "exact"
		} else if errors.Is(skErr, reconstruct.ErrIncomplete) {
			skStatus = "incomplete"
		}

		// Becker at slack 1 so the budget is exactly d (the honest
		// apples-to-apples capability comparison).
		bk := reconstruct.NewBecker(cfg.Seed, in.g.N(), in.d, 1)
		if err := stream.Apply(st, bk); err != nil {
			return err
		}
		bkGot, bkErr := bk.Reconstruct()
		bkStatus := "stalled"
		if bkErr == nil && bkGot.Equal(in.g) {
			bkStatus = "exact"
		} else if bkErr == nil {
			bkStatus = "wrong"
		}

		t2.AddRow(in.name, in.g.N(), deg, cdeg, in.d, skStatus, bkStatus,
			bench.FmtBytes(sk.Words()*8), bench.FmtBytes(bk.Words()*8))
	}
	emitTable(t2, out)
	return nil
}
