package main

import (
	"fmt"
	"os"
	"path/filepath"

	"graphsketch/internal/bench"
	"graphsketch/internal/graph"
)

// hyper abbreviates the shared hypergraph type in experiment code.
type hyper = graph.Hypergraph

// mustEdge abbreviates graph.MustEdge in experiment code.
var mustEdge = graph.MustEdge

// csvDir, when set by -csv, receives one CSV file per emitted table.
var csvDir string

// emitTable prints a table and, when -csv is set, also writes it as CSV.
func emitTable(t *bench.Table, out *os.File) {
	t.Fprint(out)
	if csvDir == "" {
		return
	}
	path := filepath.Join(csvDir, t.SlugTitle()+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
	}
}
