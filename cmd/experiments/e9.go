package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/commsim"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/sketch"
	"graphsketch/internal/workload"
)

// runE9 exercises the Section 2 simultaneous communication model: n
// players (one per vertex, holding its incident edges) each send one
// message built from shared public randomness; the referee must answer
// from the n messages. Because every sketch here is vertex-based, player
// P_v sends exactly vertex v's serialized share. The table reports the
// maximum and mean message sizes as n grows — polylogarithmic per player —
// and confirms the referee's decode matches ground truth. Message sizes are
// share interiors (what the paper's bounds count); the framed-total column
// adds the codec envelope (codec.ShareOverhead per message) the wire
// actually carries.
func runE9(cfg Config, out *os.File) error {
	t := bench.NewTable("E9 — simultaneous communication protocols from vertex-based sketches",
		"protocol", "n", "m", "max msg", "mean msg", "total", "framed total", "referee decode")

	ns := []int{16, 32, 64}
	if cfg.Quick {
		ns = []int{16, 32}
	}
	for _, n := range ns {
		rng := hashutil.NewRand(cfg.Seed, uint64(n))
		h := workload.ErdosRenyi(rng, n, 0.2)
		dom := h.Domain()
		scfg := sketch.SpanningConfig{}
		seed := cfg.Seed ^ uint64(n*3)

		// Spanning / connectivity protocol.
		ref := sketch.NewSpanning(seed, dom, scfg)
		res, err := commsim.Run(h, func() commsim.Protocol { return sketch.NewSpanning(seed, dom, scfg) }, ref)
		if err != nil {
			return err
		}
		f, err := ref.SpanningGraph()
		status := "FAILED"
		if err == nil && graphalg.Connected(f) == graphalg.Connected(h) {
			status = "ok"
		}
		t.AddRow("connectivity", n, h.EdgeCount(), bench.FmtBytes(res.MaxMessageBytes),
			bench.FmtBytes(int(res.MeanMessageBytes())), bench.FmtBytes(res.TotalBytes),
			bench.FmtBytes(res.FramedTotalBytes), status)

		// 2-skeleton protocol.
		refSk := sketch.NewSkeleton(seed, dom, 2, scfg)
		resSk, err := commsim.Run(h, func() commsim.Protocol { return sketch.NewSkeleton(seed, dom, 2, scfg) }, refSk)
		if err != nil {
			return err
		}
		skel, err := refSk.Skeleton()
		status = "FAILED"
		if err == nil && skel.EdgeCount() <= 2*(n-1) {
			status = "ok"
		}
		t.AddRow("2-skeleton", n, h.EdgeCount(), bench.FmtBytes(resSk.MaxMessageBytes),
			bench.FmtBytes(int(resSk.MeanMessageBytes())), bench.FmtBytes(resSk.TotalBytes),
			bench.FmtBytes(resSk.FramedTotalBytes), status)
	}

	// Reconstruction protocol on the paper's example (the exact setting of
	// Becker et al. that Section 4 generalizes).
	pe := workload.PaperExample()
	seed := cfg.Seed ^ 0xabc
	recP := reconstruct.Params{N: pe.N(), R: pe.Domain().R(), K: 2, Seed: seed}
	refRec, err := reconstruct.New(recP)
	if err != nil {
		return err
	}
	resRec, err := commsim.Run(pe, func() commsim.Protocol {
		p, err := reconstruct.New(recP)
		if err != nil {
			panic(err) // recP already validated by the referee construction
		}
		return p
	}, refRec)
	if err != nil {
		return err
	}
	got, err := refRec.Reconstruct()
	status := "FAILED"
	if err == nil && got.Equal(pe) {
		status = "exact"
	}
	t.AddRow("reconstruct d=2", pe.N(), pe.EdgeCount(), bench.FmtBytes(resRec.MaxMessageBytes),
		bench.FmtBytes(int(resRec.MeanMessageBytes())), bench.FmtBytes(resRec.TotalBytes),
		bench.FmtBytes(resRec.FramedTotalBytes), status)

	emitTable(t, out)
	return nil
}
