package main

import (
	"os"
	"time"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE12 charts the scaling shapes behind the paper's space claims, at the
// largest n the harness runs comfortably. Absolute sketch sizes carry big
// polylog constants (see EXPERIMENTS.md), so the claims to validate are the
// *growth rates*:
//
//   - spanning sketches (Thm 2/13): words/n should grow only
//     polylogarithmically with n, while naive edge storage grows like m;
//   - vertex-connectivity sketches (Thm 4): words should track k·n·R up to
//     polylog factors — the words/(k·n) column at fixed R exposes the
//     polylog-only residual;
//   - update and decode times should stay near-linear.
func runE12(cfg Config, out *os.File) error {
	t1 := bench.NewTable("E12a — spanning sketch scaling with n (m = 4n stream, 50% churn)",
		"n", "m", "updates", "sketch words", "words/n", "naive words", "ingest", "decode")
	ns := []int{64, 128, 256, 512}
	if cfg.Quick {
		ns = []int{64, 128}
	}
	for _, n := range ns {
		rng := hashutil.NewRand(cfg.Seed, uint64(n))
		final := workload.ErdosRenyi(rng, n, 8.0/float64(n))
		churn := workload.ErdosRenyi(rng, n, 4.0/float64(n))
		st := stream.WithChurn(final, churn, rng)

		s := sketch.NewSpanning(cfg.Seed^uint64(n), final.Domain(), sketch.SpanningConfig{})
		start := time.Now()
		if err := stream.Apply(st, s); err != nil {
			return err
		}
		ingest := time.Since(start)
		start = time.Now()
		if _, err := s.SpanningGraph(); err != nil {
			return err
		}
		decode := time.Since(start)
		words := s.Words()
		t1.AddRow(n, final.EdgeCount(), len(st), words, words/n,
			final.EdgeCount()*3, ingest.Round(time.Millisecond).String(),
			decode.Round(time.Millisecond).String())
	}
	emitTable(t1, out)

	t2 := bench.NewTable("E12b — vertex-connectivity sketch scaling (R = 64 fixed)",
		"n", "k", "sketch words", "words/(k·n)", "ingest")
	type pt struct{ n, k int }
	pts := []pt{{64, 2}, {128, 2}, {256, 2}, {64, 4}, {128, 4}}
	if cfg.Quick {
		pts = []pt{{64, 2}, {128, 2}}
	}
	for _, p := range pts {
		h := workload.MustHarary(p.n, p.k)
		s, err := vertexconn.New(vertexconn.Params{N: p.n, K: p.k, Subgraphs: 64, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := stream.Apply(stream.FromGraph(h), s); err != nil {
			return err
		}
		ingest := time.Since(start)
		words := s.Words()
		t2.AddRow(p.n, p.k, words, words/(p.k*p.n), ingest.Round(time.Millisecond).String())
	}
	emitTable(t2, out)
	return nil
}
