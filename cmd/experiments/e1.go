package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE1 validates Theorem 4: an O(kn polylog n) sketch of a dynamic stream
// answers "does removing S (|S| ≤ k) disconnect G?". Workloads are Harary
// graphs H_{k,n} (κ = k exactly, every vertex's neighbourhood is a
// separator) streamed with heavy deletion churn; queries are true
// separators (closed neighbourhoods) and random non-separators. The table
// sweeps the number of subsampled subgraphs R — the paper's R = 16k²ln n is
// the rightmost row block — and reports query accuracy and space.
func runE1(cfg Config, out *os.File) error {
	t := bench.NewTable("E1 — Theorem 4: vertex-removal queries on dynamic streams",
		"graph", "n", "k", "R(subgraphs)", "sep acc", "non-sep acc", "sketch", "naive graph")
	t.Note = "sep acc: true separators detected; non-sep acc: non-separators passed.\n" +
		"R is the number of vertex-subsampled subgraphs (paper: R = 16k²ln n)."

	sizes := []int{24, 48}
	if cfg.Quick {
		sizes = []int{24}
	}
	k := 4
	for _, n := range sizes {
		h := workload.MustHarary(n, k)
		rng := hashutil.NewRand(cfg.Seed, uint64(n))
		churn := workload.ErdosRenyi(rng, n, 0.3)
		st := stream.WithChurn(h, churn, rng)

		sweeps := []int{16, 64, 192}
		if cfg.Quick {
			sweeps = []int{16, 64}
		}
		for _, R := range sweeps {
			s, err := vertexconn.New(vertexconn.Params{N: n, R: 2, K: k, Subgraphs: R, Seed: cfg.Seed + uint64(R)})
			if err != nil {
				return err
			}
			if err := stream.Apply(st, s); err != nil {
				return err
			}
			var sep, non bench.Counter
			for q := 0; q < 12; q++ {
				// True separator: the k neighbours of vertex v in H_{k,n}.
				v := rng.IntN(n)
				set := neighbourSet(h, v, k)
				got, err := s.Disconnects(set)
				if err != nil {
					return err
				}
				sep.Observe(got == graphalg.DisconnectsQueryMode(h, set, graph.DropIncident) && got)

				// Random k-set (almost surely not a separator).
				rs := randomSet(rng, n, k)
				want := graphalg.DisconnectsQueryMode(h, rs, graph.DropIncident)
				got, err = s.Disconnects(rs)
				if err != nil {
					return err
				}
				non.Observe(got == want)
			}
			t.AddRow("Harary", n, k, R, sep.String(), non.String(),
				bench.FmtBytes(s.Words()*8), bench.FmtBytes(h.EdgeCount()*16))
		}
	}

	// One row at the paper's exact Theorem 4 constants (small n so the
	// R = 16k²ln n sketches stay tractable).
	{
		n, k := 16, 2
		h := workload.MustHarary(n, k)
		p := vertexconn.TheoryQueryParams(n, 2, k, cfg.Seed)
		s, err := vertexconn.New(p)
		if err != nil {
			return err
		}
		if err := stream.Apply(stream.FromGraph(h), s); err != nil {
			return err
		}
		rng := hashutil.NewRand(cfg.Seed, 7)
		var sep, non bench.Counter
		for q := 0; q < 8; q++ {
			v := rng.IntN(n)
			set := neighbourSet(h, v, k)
			got, err := s.Disconnects(set)
			if err != nil {
				return err
			}
			sep.Observe(got)
			rs := randomSet(rng, n, k)
			want := graphalg.DisconnectsQueryMode(h, rs, graph.DropIncident)
			got, err = s.Disconnects(rs)
			if err != nil {
				return err
			}
			non.Observe(got == want)
		}
		t.AddRow("Harary (paper R)", n, k, p.Subgraphs, sep.String(), non.String(),
			bench.FmtBytes(s.Words()*8), bench.FmtBytes(h.EdgeCount()*16))
	}

	// Hypergraph variant (Theorem 13 substitution): two 3-uniform
	// communities overlapping in 2 vertices; the overlap is the separator
	// under drop-incident semantics. Also run a sliding-window stream —
	// fully interleaved inserts and deletes.
	{
		rng := hashutil.NewRand(cfg.Seed, 31)
		hg := workload.SharedHyperCommunities(rng, 8, 2, 3, 30)
		sHG, err := vertexconn.New(vertexconn.Params{N: hg.N(), R: 3, K: 2, Subgraphs: 96, Seed: cfg.Seed ^ 0x31})
		if err != nil {
			return err
		}
		// Sliding-window stream: transient edges precede the final graph.
		churn := workload.UniformHypergraph(rng, hg.N(), 3, 40)
		var sequence []graph.Hyperedge
		for _, e := range churn.Edges() {
			if !hg.Has(e) {
				sequence = append(sequence, e)
			}
		}
		sequence = append(sequence, hg.Edges()...)
		// Window = |final graph|: exactly the transient prefix expires,
		// leaving hg live at the end.
		window := hg.EdgeCount()
		st := stream.SlidingWindow(sequence, window)
		if got, err := stream.Materialize(st, hg.N(), 3); err != nil || !got.Equal(hg) {
			return fmt.Errorf("E1: sliding-window stream does not materialize to the workload (%v)", err)
		}
		if err := stream.Apply(st, sHG); err != nil {
			return err
		}
		// Verify the stream really materialized to hg before querying.
		var sep, non bench.Counter
		got, err := sHG.Disconnects(map[int]bool{6: true, 7: true}) // the overlap
		if err != nil {
			return err
		}
		sep.Observe(got)
		for q := 0; q < 15; q++ {
			rs := randomSet(rng, hg.N(), 2)
			want := graphalg.DisconnectsQueryMode(hg, rs, graph.DropIncident)
			g, err := sHG.Disconnects(rs)
			if err != nil {
				return err
			}
			non.Observe(g == want)
		}
		t.AddRow("HyperCommunities r=3", hg.N(), 2, 96, sep.String(), non.String(),
			bench.FmtBytes(sHG.Words()*8), bench.FmtBytes(hg.EdgeCount()*32))
	}

	// SharedCliques: unique small separator, big edge connectivity.
	sc, err := workload.SharedCliques(8, 8, 2)
	if err != nil {
		return err
	}
	s, err := vertexconn.New(vertexconn.Params{N: sc.N(), R: 2, K: 2, Subgraphs: 96, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	if err := stream.Apply(stream.FromGraph(sc), s); err != nil {
		return err
	}
	var sep, non bench.Counter
	got, err := s.Disconnects(map[int]bool{0: true, 1: true})
	if err != nil {
		return err
	}
	sep.Observe(got)
	rng := hashutil.NewRand(cfg.Seed, 99)
	for q := 0; q < 23; q++ {
		rs := randomSet(rng, sc.N(), 2)
		want := graphalg.DisconnectsQueryMode(sc, rs, graph.DropIncident)
		g, err := s.Disconnects(rs)
		if err != nil {
			return err
		}
		non.Observe(g == want)
	}
	t.AddRow("SharedCliques", sc.N(), 2, 96, sep.String(), non.String(),
		bench.FmtBytes(s.Words()*8), bench.FmtBytes(sc.EdgeCount()*16))

	emitTable(t, out)
	return nil
}

// neighbourSet returns the first k neighbours of v — in Harary graphs this
// is a minimum separator isolating v when k equals the degree.
func neighbourSet(h *graph.Hypergraph, v, k int) map[int]bool {
	set := map[int]bool{}
	for _, e := range h.Edges() {
		if e.Contains(v) {
			for _, u := range e {
				if u != v && len(set) < k {
					set[u] = true
				}
			}
		}
	}
	return set
}

func randomSet(rng *rand.Rand, n, k int) map[int]bool {
	set := map[int]bool{}
	for len(set) < k {
		set[rng.IntN(n)] = true
	}
	return set
}
