package main

import (
	"os"
	"strings"
	"testing"

	"graphsketch/internal/obs"
)

// TestObsDocDrift keeps the IMPLEMENTATION.md observability tables honest:
// every metric family registered by an OnEnable hook and every /debug/*
// endpoint the handler mounts must be documented. The experiments binary
// imports every instrumented package, so enabling collection here binds
// the complete family set. Run via `make obs-check`.
func TestObsDocDrift(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	doc, err := os.ReadFile("../../IMPLEMENTATION.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	families := obs.Default().Families()
	if len(families) == 0 {
		t.Fatal("no metric families registered with collection enabled")
	}
	for _, f := range families {
		if !strings.Contains(text, f) {
			t.Errorf("metric family %s is registered but missing from the IMPLEMENTATION.md observability tables", f)
		}
	}

	paths := obs.EndpointPaths()
	if len(paths) == 0 {
		t.Fatal("EndpointPaths returned nothing")
	}
	for _, p := range paths {
		if !strings.Contains(text, p) {
			t.Errorf("endpoint %s is served but missing from IMPLEMENTATION.md", p)
		}
	}
}
