package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE5 validates Theorem 14: a k-skeleton decoded from k independent
// spanning sketches satisfies |δ_H'(S)| ≥ min(|δ_H(S)|, k) for every cut.
// For n ≤ 14 the check is exhaustive over all 2^(n−1) cuts; streams carry
// deletion churn. The table reports violations (must be 0), the skeleton
// size against the k(n−1) bound, and sketch words scaling linearly in k.
func runE5(cfg Config, out *os.File) error {
	t := bench.NewTable("E5 — Theorem 14: k-skeleton cut preservation (exhaustive cuts)",
		"r", "k", "n", "cuts checked", "violations", "skeleton edges", "k(n-1)", "sketch")

	n := 12
	trials := 3
	if cfg.Quick {
		trials = 2
	}
	for _, r := range []int{2, 3} {
		for _, k := range []int{1, 2, 3, 4} {
			violations := 0
			cuts := 0
			var skelEdges, words int
			for trial := 0; trial < trials; trial++ {
				rng := hashutil.NewRand(cfg.Seed, uint64(r*100+k*10+trial))
				var final *hyper
				if r == 2 {
					final = workload.ErdosRenyi(rng, n, 0.45)
				} else {
					final = workload.UniformHypergraph(rng, n, r, 3*n)
				}
				churn := workload.MixedHypergraph(rng, n, r, 2*n)
				sk := sketch.NewSkeleton(cfg.Seed^uint64(trial+k*7), final.Domain(), k, sketch.SpanningConfig{})
				if err := stream.Apply(stream.WithChurn(final, churn, rng), sk); err != nil {
					return err
				}
				words = sk.Words()
				skel, err := sk.Skeleton()
				if err != nil {
					return err
				}
				skelEdges = skel.EdgeCount()
				for mask := 1; mask < 1<<uint(n-1); mask++ {
					inS := func(v int) bool { return mask&(1<<uint(v)) != 0 }
					orig := final.CutWeight(inS)
					got := skel.CutWeight(inS)
					want := orig
					if want > int64(k) {
						want = int64(k)
					}
					cuts++
					if got < want {
						violations++
					}
				}
			}
			t.AddRow(r, k, n, cuts, violations, skelEdges, k*(n-1), bench.FmtBytes(words*8))
		}
	}
	emitTable(t, out)
	return nil
}
