package main

import (
	"fmt"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/graph"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/hybrid"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE14 measures the adaptive hybrid exact/sketch representation
// (internal/hybrid) on the sparse streams it exists for: power-law graphs
// whose typical vertex fits a small exact buffer while hub vertices spill
// into the wrapped spanning sketch, with churn waves driving degrees across
// the spill boundary. For each budget the table reports how much of the
// graph stayed exact, the per-sketch state size against the pure sketch fed
// the same stream, and whether the mixed exact/sketch decode recovered the
// true components. With -input the sweep also runs on the on-disk edge
// list, so the space table can be reproduced on a real dataset.
func runE14(cfg Config, out *os.File) error {
	t := bench.NewTable("E14 — hybrid exact/sketch representation: space vs spill on sparse streams",
		"workload", "n", "budget(words)", "spilled", "hybrid words", "pure words", "ratio", "decode exact")
	t.Note = "Power-law sparse streams (avg degree 4, exponent 2.5) with boundary-churn waves;\n" +
		"'spilled' is the vertex fraction that overflowed its exact buffer. 'ratio' is\n" +
		"pure/hybrid state words — the hybrid's space win. Decode compares components\n" +
		"against ground truth."

	n := 2048
	waves := 3
	trials := 5
	if cfg.Quick {
		n, waves, trials = 512, 2, 2
	}

	type load struct {
		name  string
		final *graph.Hypergraph
	}
	var loads []load
	for trial := 0; trial < trials; trial++ {
		rng := hashutil.NewRand(cfg.Seed, uint64(0xe14<<8|trial))
		loads = append(loads, load{
			fmt.Sprintf("powerlaw/%d", trial),
			workload.SparsePowerLaw(rng, n, 4, 2.5),
		})
	}
	if cfg.Input != "" {
		f, err := os.Open(cfg.Input)
		if err != nil {
			return err
		}
		g, err := stream.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
		loads = append(loads, load{"file:" + cfg.Input, g})
	}

	for _, ld := range loads {
		for _, budget := range []int{8, 32, 128} {
			rng := hashutil.NewRand(cfg.Seed, uint64(0xe14<<16|budget))
			st := workload.BoundaryChurnStream(rng, ld.final, budget/2, waves)
			nv := ld.final.N()

			pure, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: nv, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			inner, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: nv, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			hy, err := hybrid.New(inner, budget)
			if err != nil {
				return err
			}
			for _, s := range []stream.Sink{pure, hy} {
				if err := stream.Apply(st, s); err != nil {
					return err
				}
			}

			var exact bench.Counter
			f, err := hy.SpanningGraph()
			if err == nil {
				exact.Observe(sameComponents(ld.final, f))
			} else {
				exact.Observe(false)
			}
			hw := hy.StateWords()
			pw := pure.Words() - pure.SharedWords()
			t.AddRow(ld.name, nv, budget,
				fmt.Sprintf("%.1f%%", 100*float64(hy.SpilledCount())/float64(nv)),
				hw, pw, fmt.Sprintf("%.1fx", float64(pw)/float64(hw)), exact.String())
		}
	}
	emitTable(t, out)
	return nil
}
