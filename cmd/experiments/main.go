// Command experiments regenerates the paper's results. The paper (PODS
// 2015) is a theory paper with no tables or figures; each experiment here
// validates one theorem's claim empirically — correctness probability,
// approximation quality, and space usage — as indexed in DESIGN.md and
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run E1,E5] [-seed 1] [-quick] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no -run flag every experiment runs in order. The profile flags write
// pprof files covering the selected experiments (`go tool pprof` reads them);
// -memprofile snapshots the heap after a final GC, once all experiments end.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphsketch/internal/obs"
)

// Config carries the shared experiment knobs.
type Config struct {
	Seed  uint64
	Quick bool
	// Input optionally points at an on-disk edge-list file; experiments
	// that can run on real data (E14) add it to their workload sweep.
	Input string
}

type experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, out *os.File) error
}

var registry = []experiment{
	{"E1", "Theorem 4: vertex-connectivity query structure", runE1},
	{"E2", "Theorem 5: Ω(kn) lower bound via INDEX", runE2},
	{"E3", "Theorem 8: distinguishing (1+ε)k- from k-vertex-connectivity", runE3},
	{"E4", "Theorem 13: hypergraph spanning-graph / connectivity sketches", runE4},
	{"E5", "Theorem 14: k-skeleton cut preservation", runE5},
	{"E6", "Theorem 15 + Lemmas 10/16: light_k and cut-degenerate reconstruction", runE6},
	{"E7", "Theorems 19/20: hypergraph sparsifier", runE7},
	{"E8", "Section 1.1: insert-only baseline fails under deletions", runE8},
	{"E9", "Section 2: simultaneous communication model", runE9},
	{"E10", "Section 4.2 + Theorem 21: sketch-reuse ablation and SFST bound", runE10},
	{"E11", "Extensions: edge connectivity from skeletons; guess-and-double κ", runE11},
	{"E12", "Scaling: sketch size and time growth rates with n and k", runE12},
	{"E13", "Calibration: decode reliability vs sampler size knobs", runE13},
	{"E14", "Hybrid exact/sketch representation: space vs spill on sparse streams", runE14},
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (E1..E14) or 'all'")
	seed := flag.Uint64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	input := flag.String("input", "", "edge-list file (u v [w]; '#'/'%' comments) added to the workload sweep of experiments that accept real data")
	csv := flag.String("csv", "", "also write each table as CSV into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after final GC) to this file")
	obsAddr := flag.String("obs-addr", "", "enable metrics and serve /metrics, /debug/vars, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	traceOut := flag.String("trace-out", "", "append sampled trace spans and flight-recorder events to this file as JSON lines (enables collection)")
	flag.Parse()
	if *obsAddr != "" {
		bound, err := obs.Setup(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/metrics\n", bound)
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		obs.Enable()
		obs.SetTraceOutput(f)
		fmt.Fprintf(os.Stderr, "trace: appending JSONL spans/events to %s\n", *traceOut)
		defer func() {
			obs.SetTraceOutput(nil)
			f.Close()
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			os.Exit(1)
		}
		csvDir = *csv
	}

	want := map[string]bool{}
	all := *runFlag == "all"
	if !all {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	cfg := Config{Seed: *seed, Quick: *quick, Input: *input}
	ran := 0
	for _, ex := range registry {
		if !all && !want[ex.ID] {
			continue
		}
		ran++
		fmt.Printf("\n######## %s — %s ########\n", ex.ID, ex.Title)
		start := time.Now()
		if err := ex.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", ex.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -run; known IDs: E1..E14")
		os.Exit(2)
	}
}
