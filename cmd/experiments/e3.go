package main

import (
	"math"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE3 validates Theorem 8: with R = O(k²ε⁻¹ log n) subsampled subgraphs,
// κ(H) distinguishes (1+ε)k-vertex-connected graphs from ≤k-connected
// ones. Ground truth comes from Harary graphs, whose vertex connectivity is
// exact. Two guarantees are checked separately: κ(H) ≤ κ(G) always (H is a
// subgraph — "low side" must be perfect at any R), and κ(H) ≥ k w.h.p. when
// κ(G) ≥ (1+ε)k ("high side", improving as R grows). The space column shows
// the ε⁻¹ scaling of the paper's bound.
func runE3(cfg Config, out *os.File) error {
	t := bench.NewTable("E3 — Theorem 8: (1+ε)k vs k vertex connectivity",
		"k", "ε", "R(subgraphs)", "low side ok", "high side ok", "sketch", "theory R")
	t.Note = "low side: κ(H) ≤ k for k-connected G (must be 100% — subgraph property).\n" +
		"high side: κ(H) ≥ k for (1+ε)k-connected G (improves with R)."

	n := 28
	trials := 6
	if cfg.Quick {
		trials = 3
	}
	type pt struct {
		k   int
		eps float64
	}
	pts := []pt{{2, 1.0}, {2, 0.5}, {3, 1.0}}
	if cfg.Quick {
		pts = []pt{{2, 1.0}}
	}
	for _, p := range pts {
		kHigh := int(math.Ceil(float64(p.k) * (1 + p.eps)))
		low := workload.MustHarary(n, p.k)
		high := workload.MustHarary(n, kHigh)
		for _, R := range []int{24, 96, 256} {
			var lowOK, highOK bench.Counter
			var words int
			for trial := 0; trial < trials; trial++ {
				seed := cfg.Seed ^ uint64(trial*7919+R)
				for _, side := range []struct {
					g    *graph.Hypergraph
					high bool
				}{{low, false}, {high, true}} {
					s, err := vertexconn.New(vertexconn.Params{
						N: n, R: 2, K: p.k, Subgraphs: R, Seed: seed})
					if err != nil {
						return err
					}
					if err := stream.Apply(stream.FromGraph(side.g), s); err != nil {
						return err
					}
					words = s.Words()
					est, err := s.EstimateConnectivity(int64(p.k))
					if err != nil {
						return err
					}
					if side.high {
						highOK.Observe(est >= int64(p.k))
					} else {
						lowOK.Observe(est <= int64(p.k))
					}
				}
			}
			theoryR := int(math.Ceil(160 * float64(p.k*p.k) / p.eps * math.Log(float64(n))))
			t.AddRow(p.k, p.eps, R, lowOK.String(), highOK.String(),
				bench.FmtBytes(words*8), theoryR)
		}
	}
	emitTable(t, out)
	return nil
}
