package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/l0"
	"graphsketch/internal/lowerbound"
	"graphsketch/internal/sketch"
	"graphsketch/internal/workload"
)

// runE10 demonstrates the two cautionary results the paper belabours.
//
// Part one (Section 4.2, footnote 3): peeling spanning forests repeatedly
// out of ONE spanning sketch — decode F_1, subtract, decode F_2, … — is an
// invalid use of the union bound, and information-theoretically cannot work
// in general: it would let an O(n polylog n)-bit sketch reconstruct all
// Ω(n² log n) bits of a dense graph. The ablation peels K_n to exhaustion
// with one reused sketch and reports the bit accounting: at laptop scale
// the sketch holds far more bits than the graph (ratio ≫ 1), which is *why*
// reuse happens to survive here — and the ratio visibly shrinks as n grows
// (sketch Θ(n polylog n) vs graph Θ(n² log n)), which is why it must fail
// at scale, exactly as the paper argues. A proper Theorem 14 skeleton stack
// (independent layers) is shown alongside.
//
// Part two (Theorem 21): the scan-first-search-tree reduction — in Bob's
// completed INDEX graph, any SFST reveals Alice's bit x_{i,j} through the
// presence of {t_j, u_i} or {v_i, w_j}, which is why SFST streaming needs
// Ω(n²) space and Section 3 takes the subsampling route instead.
func runE10(cfg Config, out *os.File) error {
	// Part 1: reuse ablation.
	t1 := bench.NewTable("E10a — Section 4.2 ablation: peeling forests from one reused sketch",
		"n", "m(K_n)", "mode", "extracted", "false", "outcome", "sketch bits", "graph bits", "ratio")
	t1.Note = "reuse only 'works' while sketch bits >> graph bits; the ratio shrinks like\n" +
		"polylog(n)/n, so the paper's footnote-3 contradiction binds at scale."

	ns := []int{12, 24, 48, 96}
	if cfg.Quick {
		ns = []int{12, 24}
	}
	lean := sketch.SpanningConfig{Rounds: 6, Sampler: l0.Config{S: 2, Rows: 2}}
	for _, n := range ns {
		h := workload.Complete(n)
		m := h.EdgeCount()
		graphBits := m * bitsPerEdge(n)

		// Independent (valid): a Theorem 14 skeleton stack sized for full
		// extraction (only at the smallest n — it is big).
		if n <= 24 {
			sk := sketch.NewSkeleton(cfg.Seed, h.Domain(), n/2, lean)
			if err := sk.UpdateGraph(h, 1); err != nil {
				return err
			}
			skel, err := sk.Skeleton()
			outcome := "ok"
			trueEdges, falseEdges := 0, 0
			if err != nil {
				outcome = "decode error"
			} else {
				for _, e := range skel.Edges() {
					if h.Has(e) {
						trueEdges++
					} else {
						falseEdges++
					}
				}
			}
			skBits := sk.Words() * 64
			t1.AddRow(n, m, "independent", trueEdges, falseEdges, outcome,
				skBits, graphBits, bench.FmtFloat(float64(skBits)/float64(graphBits), 1))
		}

		// Reused (invalid): one spanning sketch peeled to exhaustion.
		sp := sketch.NewSpanning(cfg.Seed, h.Domain(), lean)
		if err := sp.UpdateGraph(h, 1); err != nil {
			return err
		}
		spBits := sp.Words() * 64
		trueEdges, falseEdges := 0, 0
		outcome := "fully peeled"
		extracted := graph.NewGraph(n)
		for round := 0; round < n; round++ {
			f, err := sp.SpanningGraph()
			if err != nil {
				outcome = "decode failure (detected)"
				break
			}
			if f.EdgeCount() == 0 {
				break
			}
			bad := false
			for _, e := range f.Edges() {
				if h.Has(e) && !extracted.Has(e) {
					trueEdges++
					extracted.MustAddEdge(e, 1)
				} else {
					falseEdges++
					bad = true
				}
			}
			if bad {
				outcome = "WRONG edges decoded"
				break
			}
			if err := sp.UpdateGraph(f, -1); err != nil {
				return err
			}
		}
		if trueEdges < m && outcome == "fully peeled" {
			outcome = "stalled"
		}
		t1.AddRow(n, m, "reused", trueEdges, falseEdges, outcome,
			spBits, graphBits, bench.FmtFloat(float64(spBits)/float64(graphBits), 1))
	}
	emitTable(t1, out)

	// Part 2: SFST reduction of Theorem 21.
	t2 := bench.NewTable("E10b — Theorem 21: SFSTs decode INDEX (why SFST streaming costs Ω(n²))",
		"n", "bits probed", "decoded correctly", "bits in graph")
	t2.Note = "Alice's x ∈ {0,1}^{n×n} becomes a 4n-vertex graph; Bob adds {u_i,v_i} and reads\n" +
		"x[i,j] off any scan-first search tree. One SFST per query decodes one bit."

	nBits := 12
	rng := hashutil.NewRand(cfg.Seed, 10)
	inst := lowerbound.RandomIndex(rng, nBits, nBits)
	var dec bench.Counter
	probes := 40
	for p := 0; p < probes; p++ {
		i, j := rng.IntN(nBits), rng.IntN(nBits)
		got, err := lowerbound.Theorem21Protocol(inst, graphalg.ScanFirstTree, i, j)
		if err != nil {
			return err
		}
		dec.Observe(got == inst.Bits[i][j])
	}
	t2.AddRow(nBits, probes, dec.String(), nBits*nBits)
	emitTable(t2, out)
	return nil
}

// bitsPerEdge is the information cost of naming one edge of K_n.
func bitsPerEdge(n int) int {
	b := 0
	for v := n * n; v > 1; v >>= 1 {
		b++
	}
	return b
}
