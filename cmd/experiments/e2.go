package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/lowerbound"
)

// runE2 exercises the Theorem 5 lower-bound reduction from INDEX: Alice
// encodes a (k+1)×n bit matrix as a bipartite graph and streams it through
// the query sketch; Bob continues the stream (linearity) and issues one
// Theorem 4 query, recovering x[i,j]. The table reports decoding accuracy
// (the protocol of the lower-bound proof genuinely works against our
// sketch) and the sketch size normalized by k·n (the lower-bound floor):
// the per-(k·n) factor is the polylog overhead, demonstrating both
// directions of "Θ(kn polylog n) is the right bound".
func runE2(cfg Config, out *os.File) error {
	t := bench.NewTable("E2 — Theorem 5: INDEX reduction and the Ω(kn) floor",
		"k", "n(right side)", "bits decoded", "accuracy", "sketch size", "sketch/(k·n) words")
	t.Note = "Bob recovers x[i,j] from Alice's sketch: accuracy must be ≈1 (INDEX needs Ω(kn) bits,\n" +
		"so any structure answering these queries — including this sketch — stores Ω(kn))."

	ks := []int{1, 2, 3}
	if cfg.Quick {
		ks = []int{1, 2}
	}
	nRight := 24
	trials := 8
	for _, k := range ks {
		rng := hashutil.NewRand(cfg.Seed, uint64(k))
		inst := lowerbound.RandomIndex(rng, k+1, nRight)
		nTotal := lowerbound.Theorem5VertexCount(inst)

		var acc bench.Counter
		var sketchBytes int
		for trial := 0; trial < trials; trial++ {
			i := rng.IntN(k + 1)
			j := rng.IntN(nRight)
			var built *vertexconn.Sketch
			got, err := lowerbound.Theorem5Protocol(inst, func() lowerbound.QueryStructure {
				s, err := vertexconn.New(vertexconn.Params{
					N: nTotal, R: 2, K: k, Subgraphs: 48, Seed: cfg.Seed ^ uint64(1000*k+trial)})
				if err != nil {
					panic(err)
				}
				built = s
				return s
			}, i, j)
			if err != nil {
				return err
			}
			sketchBytes = built.Words() * 8
			acc.Observe(got == inst.Bits[i][j])
		}
		t.AddRow(k, nRight, acc.Trials, acc.String(), bench.FmtBytes(sketchBytes),
			bench.FmtFloat(float64(sketchBytes/8)/float64(k*nTotal), 0))
	}
	emitTable(t, out)
	return nil
}
