package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE8 reproduces the Section 1.1 comparison: the Eppstein et al.
// insert-only algorithm (keep {u,v} unless k vertex-disjoint u–v paths
// already exist among kept edges) is exactly right on insert-only streams
// but *unsound under deletions* — the disjoint paths that justified
// dropping an edge can be deleted later. The adversarial stream inserts a
// dense bait clique, then the k-connected target graph (whose edges the
// filter mostly drops: the bait supplies k disjoint paths), then deletes
// the bait. The linear sketch is oblivious to the interleaving and stays
// correct.
func runE8(cfg Config, out *os.File) error {
	t := bench.NewTable("E8 — insert-only baseline (Eppstein et al.) vs linear sketch under deletions",
		"stream", "n", "k", "true κ", "baseline κ̂", "baseline edges", "sketch κ̂", "sketch ok")
	t.Note = "adversarial = bait clique inserted, target inserted (mostly dropped by the\n" +
		"baseline), bait deleted. The baseline ends with a gutted certificate."

	ns := []int{16, 24}
	if cfg.Quick {
		ns = []int{16}
	}
	k := 3
	for _, n := range ns {
		target := workload.MustHarary(n, k)
		bait := workload.Complete(n)

		// Insert-only control: stream just the target.
		for _, mode := range []string{"insert-only", "adversarial"} {
			var st stream.Stream
			if mode == "insert-only" {
				st = stream.FromGraph(target)
			} else {
				st = stream.InsertDeleteInsert(bait, target)
			}

			// Baseline.
			filter := graphalg.NewEppsteinFilter(n, int64(k))
			for _, u := range st {
				var err error
				if u.Op == stream.Insert {
					_, err = filter.Insert(u.Edge[0], u.Edge[1])
				} else {
					err = filter.Delete(u.Edge[0], u.Edge[1])
				}
				if err != nil {
					return err
				}
			}
			baseK := filter.VertexConnectivity()

			// Sketch.
			s, err := vertexconn.New(vertexconn.Params{N: n, R: 2, K: k, Subgraphs: 192, Seed: cfg.Seed ^ uint64(n)})
			if err != nil {
				return err
			}
			if err := stream.Apply(st, s); err != nil {
				return err
			}
			skK, err := s.EstimateConnectivity(int64(k))
			if err != nil {
				return err
			}
			trueK := graphalg.VertexConnectivity(target, int64(k))
			t.AddRow(mode, n, k, trueK, baseK, filter.EdgesStored(), skK,
				okMark(skK == trueK))
		}
	}
	emitTable(t, out)
	return nil
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
