package main

import (
	"math/rand/v2"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE4 validates Theorem 13: the first dynamic-stream sketch for
// hypergraph connectivity. For each hyperedge cardinality r, random
// r-uniform hypergraphs (one connected, one with two planted components)
// are streamed with ~50% deletion churn; the decoded spanning graph must
// reproduce the exact component structure. The table reports decode
// success across seeds and the sketch size against naive edge storage —
// the O(n polylog n) vs O(m·r) gap that motivates sketching.
func runE4(cfg Config, out *os.File) error {
	t := bench.NewTable("E4 — Theorem 13: hypergraph spanning-graph sketches under churn",
		"r", "n", "m(final)", "updates", "components ok", "sketch", "naive edges")
	t.Note = "streams are ~2/3 deletions by volume; 'components ok' requires the decoded\n" +
		"spanning graph to match the true component structure exactly."

	ns := []int{16, 32, 64}
	if cfg.Quick {
		ns = []int{16, 32}
	}
	trials := 8
	if cfg.Quick {
		trials = 4
	}
	for _, r := range []int{2, 3, 4} {
		for _, n := range ns {
			var ok bench.Counter
			var words, updates, m int
			for trial := 0; trial < trials; trial++ {
				rng := hashutil.NewRand(cfg.Seed, uint64(r*1000+n*10+trial))
				var final *hyper
				if trial%2 == 0 {
					final = workload.UniformHypergraph(rng, n, r, 3*n)
				} else {
					// Two planted components: left half and right half.
					final = plantedTwoComponents(rng, n, r)
				}
				churn := workload.UniformHypergraph(rng, n, r, 3*n)
				st := stream.WithChurn(final, churn, rng)
				updates = len(st)
				m = final.EdgeCount()

				s := sketch.NewSpanning(cfg.Seed^uint64(trial*31+n), final.Domain(), sketch.SpanningConfig{})
				if err := stream.Apply(st, s); err != nil {
					return err
				}
				words = s.Words()
				f, err := s.SpanningGraph()
				if err != nil {
					ok.Observe(false)
					continue
				}
				ok.Observe(sameComponents(final, f))
			}
			t.AddRow(r, n, m, updates, ok.String(),
				bench.FmtBytes(words*8), bench.FmtBytes(m*(r+1)*8))
		}
	}
	emitTable(t, out)
	return nil
}

func sameComponents(a, b *hyper) bool {
	da := graphalg.ComponentsOf(a)
	db := graphalg.ComponentsOf(b)
	n := a.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if da.Same(u, v) != db.Same(u, v) {
				return false
			}
		}
	}
	return true
}

func plantedTwoComponents(rng *rand.Rand, n, r int) *hyper {
	h := workload.PlantedCutHypergraph(rng, n, r, 2*n, 0)
	return h
}
