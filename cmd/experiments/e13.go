package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/l0"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE13 calibrates the sketch parameters the profiles in internal/plan
// encode: the spanning-graph decode success rate as a function of the
// per-level recovery sparsity S, the rows per level, and the Boruvka round
// count. The failure modes are all *detected* (ErrDecodeFailed), so the
// table is a reliability-vs-space menu — the empirical grounding for the
// lean/balanced/theory profiles and for the repository-wide defaults
// (S=8, Rows=3, rounds=log2 n + 2).
func runE13(cfg Config, out *os.File) error {
	t := bench.NewTable("E13 — sampler calibration: spanning decode reliability vs size knobs",
		"S", "rows", "rounds(+log2 n)", "decode ok", "component-exact", "words/vertex")
	t.Note = "G(n=32, m≈3n) with 50% churn, 20 seeds per row. 'decode ok' counts successful\n" +
		"decodes (failures are detected errors); 'component-exact' requires the decoded\n" +
		"forest to match the true components exactly."

	n := 32
	trials := 20
	if cfg.Quick {
		trials = 8
	}
	type knob struct {
		s, rows, extraRounds int
	}
	knobs := []knob{
		{1, 1, 0}, {2, 2, 0}, {4, 2, 0}, {4, 2, 1},
		{8, 2, 2}, {8, 3, 2}, {16, 3, 2},
	}
	if cfg.Quick {
		knobs = []knob{{1, 1, 0}, {4, 2, 1}, {8, 3, 2}}
	}
	log2n := 5 // ⌈log2 32⌉
	for _, kb := range knobs {
		var ok, exact bench.Counter
		var words int
		for trial := 0; trial < trials; trial++ {
			rng := hashutil.NewRand(cfg.Seed, uint64(trial*131+kb.s))
			final := workload.ErdosRenyi(rng, n, 6.0/float64(n))
			churn := workload.ErdosRenyi(rng, n, 3.0/float64(n))
			scfg := sketch.SpanningConfig{
				Rounds:  log2n + kb.extraRounds,
				Sampler: l0.Config{S: kb.s, Rows: kb.rows},
			}
			s := sketch.NewSpanning(cfg.Seed^uint64(trial*7+kb.s*100), final.Domain(), scfg)
			if err := stream.Apply(stream.WithChurn(final, churn, rng), s); err != nil {
				return err
			}
			if w := s.Words() / n; w > words {
				words = w
			}
			f, err := s.SpanningGraph()
			if err != nil {
				ok.Observe(false)
				exact.Observe(false)
				continue
			}
			ok.Observe(true)
			exact.Observe(sameComponents(final, f))
		}
		t.AddRow(kb.s, kb.rows, kb.extraRounds, ok.String(), exact.String(), words)
	}
	emitTable(t, out)
	return nil
}
