package main

import (
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/edgeconn"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE11 evaluates the library's two extensions beyond the paper's stated
// theorems, both direct corollaries of its machinery:
//
//   - edge connectivity from k-skeletons (Theorem 14 applied to the global
//     min cut — the hypergraph counterpart of what the paper calls graph
//     sketching's "main success story"), including the paper's Section 1.1
//     motivating gap λ ≫ κ on shared-separator graphs;
//   - guess-and-double vertex-connectivity estimation (removing Theorem 8's
//     "k is an upper bound" precondition) at an O(log k) space factor.
func runE11(cfg Config, out *os.File) error {
	t1 := bench.NewTable("E11a — extension: edge connectivity via k-skeletons (λ vs κ)",
		"graph", "n", "true λ", "sketch λ̂", "true κ", "sketch κ̂", "λ sketch", "κ sketch")
	t1.Note = "the paper's Section 1.1 point: λ bounds κ from above but can be far larger;\n" +
		"both quantities from one pass over the same dynamic stream."

	type inst struct {
		name string
		g    *hyper
		kap  int
	}
	sc, err := workload.SharedCliques(7, 7, 2)
	if err != nil {
		return err
	}
	insts := []inst{
		{"SharedCliques(7,7,2)", sc, 2},
		{"Harary H_{4,16}", workload.MustHarary(16, 4), 4},
		{"Cycle C_16", workload.Cycle(16), 2},
	}
	for _, in := range insts {
		rng := hashutil.NewRand(cfg.Seed, 11)
		churn := workload.ErdosRenyi(rng, in.g.N(), 0.3)
		st := stream.WithChurn(in.g, churn, rng)

		ec, err := edgeconn.New(edgeconn.Params{
			N: in.g.N(), R: in.g.Domain().R(), K: 8, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		if err := stream.Apply(st, ec); err != nil {
			return err
		}
		lambdaHat, _, err := ec.EdgeConnectivity()
		if err != nil {
			return err
		}
		vc, err := vertexconn.New(vertexconn.Params{
			N: in.g.N(), K: in.kap, Subgraphs: 128, Seed: cfg.Seed ^ 0xe11})
		if err != nil {
			return err
		}
		if err := stream.Apply(st, vc); err != nil {
			return err
		}
		kappaHat, err := vc.EstimateConnectivity(int64(in.kap))
		if err != nil {
			return err
		}
		trueLambda, _, err := graphalg.GlobalMinCutAll(in.g)
		if err != nil {
			return err
		}
		trueKappa := graphalg.VertexConnectivity(in.g, 8)
		t1.AddRow(in.name, in.g.N(), trueLambda, lambdaHat, trueKappa, kappaHat,
			bench.FmtBytes(ec.Words()*8), bench.FmtBytes(vc.Words()*8))
	}
	emitTable(t1, out)

	t2 := bench.NewTable("E11b — extension: guess-and-double κ estimation (no prior bound on k)",
		"graph", "true κ", "estimate", "scales", "sketch")
	trials := []struct {
		name string
		g    *hyper
	}{
		{"Harary H_{2,20}", workload.MustHarary(20, 2)},
		{"Harary H_{3,20}", workload.MustHarary(20, 3)},
		{"Harary H_{5,20}", workload.MustHarary(20, 5)},
		{"two components", twoCycles(20)},
	}
	for i, tr := range trials {
		g := tr.g
		e, err := vertexconn.NewEstimator(vertexconn.EstimatorParams{
			N: g.N(), KMax: 8, Seed: cfg.Seed ^ uint64(i)})
		if err != nil {
			return err
		}
		if err := stream.Apply(stream.FromGraph(g), e); err != nil {
			return err
		}
		got, err := e.Estimate()
		if err != nil {
			return err
		}
		trueK := graphalg.VertexConnectivity(g, 8)
		t2.AddRow(tr.name, trueK, got, e.Scales(), bench.FmtBytes(e.Words()*8))
	}
	emitTable(t2, out)
	return nil
}

// twoCycles returns two disjoint cycles on n vertices (κ = 0).
func twoCycles(n int) *hyper {
	h := workload.Cycle(n)
	half := n / 2
	h.MustAddEdge(mustEdge(0, n-1), -1)       // break the big cycle open
	h.MustAddEdge(mustEdge(half-1, half), -1) // split into two paths
	h.MustAddEdge(mustEdge(0, half-1), 1)     // close cycle on 0..half-1
	h.MustAddEdge(mustEdge(half, n-1), 1)     // close cycle on half..n-1
	return h
}
