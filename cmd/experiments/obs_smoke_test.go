package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"graphsketch/internal/obs"
)

// TestObsEndpointSmoke is the -obs-addr wiring end to end, in process:
// enable collection and serve on an ephemeral port (exactly what the flag
// does), run one real experiment, then scrape /metrics and check the
// advertised families and the pprof index are actually served.
func TestObsEndpointSmoke(t *testing.T) {
	addr, err := obs.Setup("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Disable()

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := runE4(Config{Seed: 1, Quick: true}, devnull); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	out := string(body)
	for _, family := range []string{
		"stream_updates_total",
		"stream_deletes_total",
		"l0_sample_draws_total",
		"recovery_ssparse_decode_success_total",
		"sketch_peel_rounds",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// E4 streams with heavy churn and decodes spanning graphs, so the
	// stream and decode families must be nonzero.
	if !strings.Contains(out, "stream_deletes_total ") ||
		strings.Contains(out, "stream_deletes_total 0\n") {
		t.Error("stream_deletes_total did not advance during E4")
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/healthz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}
