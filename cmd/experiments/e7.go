package main

import (
	"math"
	"math/rand/v2"
	"os"

	"graphsketch/internal/bench"
	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// runE7 validates Theorems 19/20: the dynamic-stream hypergraph sparsifier.
// Dense graphs and 3-uniform hypergraphs are streamed with deletion churn;
// the decoded weighted subgraph's cuts are compared against the true graph
// over exhaustive (n ≤ 16) cuts. Sweeping the strength threshold K exposes
// the ε ↔ K tradeoff (K = O(ε⁻²(log n + r))): max cut error falls roughly
// like 1/√K while the sketch grows linearly in K. The global min cut —
// which the sparsifier must preserve exactly when below K — is reported
// separately.
func runE7(cfg Config, out *os.File) error {
	t := bench.NewTable("E7 — Theorems 19/20: hypergraph sparsifier quality vs K",
		"family", "n", "m", "K", "edges kept", "max cut err", "min cut (true→sp)", "BK edges", "BK max err", "sketch")
	t.Note = "max cut err over all 2^(n-1) cuts; ε ~ 1/√K (Theorem 20: K = O(ε⁻²(log n + r))).\n" +
		"BK columns: the classical offline Benczúr–Karger sparsifier at ε = 1/√K — the\n" +
		"non-streaming baseline whose quality the one-pass sketch is matching."

	ks := []int{2, 4, 8, 16}
	if cfg.Quick {
		ks = []int{2, 8}
	}
	type fam struct {
		name string
		r    int
		mk   func(rng *rand.Rand) *hyper
	}
	n := 14
	fams := []fam{
		{"G(n,.8)", 2, func(rng *rand.Rand) *hyper { return workload.ErdosRenyi(rng, n, 0.8) }},
		{"K_n", 2, func(rng *rand.Rand) *hyper { return workload.Complete(n) }},
		{"3-uniform", 3, func(rng *rand.Rand) *hyper { return workload.UniformHypergraph(rng, n, 3, 7*n) }},
	}
	if cfg.Quick {
		fams = fams[:2]
	}
	for _, f := range fams {
		for _, K := range ks {
			rng := hashutil.NewRand(cfg.Seed, uint64(K))
			final := f.mk(rng)
			churn := workload.MixedHypergraph(rng, n, f.r, 2*n)
			s, err := sparsify.New(sparsify.Params{N: n, R: f.r, K: K, Seed: cfg.Seed ^ uint64(K*17)})
			if err != nil {
				return err
			}
			if err := stream.Apply(stream.WithChurn(final, churn, rng), s); err != nil {
				return err
			}
			sp, err := s.Sparsifier()
			if err != nil {
				return err
			}
			worst := 0.0
			for mask := 1; mask < 1<<uint(n-1); mask++ {
				inS := func(v int) bool { return mask&(1<<uint(v)) != 0 }
				o := final.CutWeight(inS)
				g := sp.CutWeight(inS)
				if o == 0 {
					continue
				}
				if e := math.Abs(float64(g)-float64(o)) / float64(o); e > worst {
					worst = e
				}
			}
			trueMin, _, err := graphalg.GlobalMinCutAll(final)
			if err != nil {
				return err
			}
			spMin, _, err := graphalg.GlobalMinCutAll(sp)
			if err != nil {
				return err
			}
			// Offline Benczúr–Karger at the matching ε.
			bk := graphalg.BenczurKargerSparsifier(final, 1/math.Sqrt(float64(K)), 2, rng)
			bkWorst := 0.0
			for mask := 1; mask < 1<<uint(n-1); mask++ {
				inS := func(v int) bool { return mask&(1<<uint(v)) != 0 }
				o := final.CutWeight(inS)
				if o == 0 {
					continue
				}
				if e := math.Abs(float64(bk.CutWeight(inS))-float64(o)) / float64(o); e > bkWorst {
					bkWorst = e
				}
			}
			t.AddRow(f.name, n, final.EdgeCount(), K,
				sp.EdgeCount(), bench.FmtFloat(worst, 3),
				bench.FmtFloat(float64(trueMin), 0)+"→"+bench.FmtFloat(float64(spMin), 0),
				bk.EdgeCount(), bench.FmtFloat(bkWorst, 3),
				bench.FmtBytes(s.Words()*8))
		}
	}
	emitTable(t, out)
	return nil
}
