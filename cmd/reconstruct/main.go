// Command reconstruct recovers a k-cut-degenerate hypergraph — or, in
// general, its light_k edge set — from a dynamic edge stream via the
// Theorem 15 sketch, writing the recovered hyperedges to stdout one per
// line.
//
// Example:
//
//	reconstruct -n 32 -k 2 < stream.txt
//
// With -light the command prints light_k(G) even when the graph is not
// k-cut-degenerate; otherwise an incomplete reconstruction is an error.
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunReconstruct(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		os.Exit(1)
	}
}
