// Command gsd is the graph-sketch daemon: one binary, two roles of the
// TCP shard plane (internal/shardplane).
//
// As a shard server it holds one vertex-range member of a linear sketch
// and applies the coordinator's batch frames to it:
//
//	gsd -serve -addr 127.0.0.1:0
//	    Serve shard sessions; the bound address is printed on stdout.
//
// As a coordinator it partitions a dynamic stream across shard servers,
// gathers their checkpoint frames, and decodes the merged state:
//
//	gsd -coordinator -shards h1:port,h2:port,h3:port \
//	    -sketch spanning -n 1024 -stream stream.txt -verify
//	    Ingest the stream over TCP and require the gathered state to
//	    byte-match a serial baseline.
//
// All shards and the coordinator must share -sketch parameters and -seed
// (the cluster's public randomness); the codec fingerprint rejects any
// mismatch at the protocol level. -connected 'u,v' answers a connectivity
// query through the coordinator oracle after ingestion.
package main

import (
	"fmt"
	"os"

	"graphsketch/internal/cli"
)

func main() {
	if err := cli.RunGSD(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gsd: %v\n", err)
		os.Exit(1)
	}
}
