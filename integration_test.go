// End-to-end integration tests: full pipelines crossing every module
// boundary — workload generation → dynamic stream with churn → sketches →
// decode → offline ground truth. These are the tests that would catch a
// seam mismatch no package-local test sees.
package graphsketch_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"graphsketch/internal/commsim"
	"graphsketch/internal/core/edgeconn"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

// TestFullPipelineAllSketches streams one churned workload through every
// core sketch simultaneously (the way a real deployment would share one
// pass) and validates each decode against offline ground truth.
func TestFullPipelineAllSketches(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 7))
	n := 16
	final := workload.MustHarary(n, 3)
	churn := workload.ErdosRenyi(rng, n, 0.4)
	st := stream.WithChurn(final, churn, rng)

	vc, err := vertexconn.New(vertexconn.Params{N: n, K: 3, Subgraphs: 160, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ec, err := edgeconn.New(edgeconn.Params{N: n, R: final.Domain().R(), K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparsify.New(sparsify.Params{N: n, K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conn := sketch.NewSpanning(4, final.Domain(), sketch.SpanningConfig{})

	for _, sink := range []stream.Sink{vc, ec, sp, conn} {
		if err := stream.Apply(st, sink); err != nil {
			t.Fatal(err)
		}
	}

	// Vertex connectivity: Harary ground truth is exact.
	kappa, err := vc.EstimateConnectivity(3)
	if err != nil {
		t.Fatal(err)
	}
	if kappa != 3 {
		t.Errorf("κ estimate = %d, want 3", kappa)
	}

	// Edge connectivity.
	lambdaTrue, _, err := graphalg.GlobalMinCutAll(final)
	if err != nil {
		t.Fatal(err)
	}
	lambdaHat, _, err := ec.EdgeConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	wantLambda := lambdaTrue
	if wantLambda > 5 {
		wantLambda = 5
	}
	if lambdaHat != wantLambda {
		t.Errorf("λ estimate = %d, want %d", lambdaHat, wantLambda)
	}

	// Connectivity.
	connected, err := conn.Connected()
	if err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Error("connected graph decoded as disconnected")
	}

	// Sparsifier: subgraph of final, bounded cut error on sampled cuts.
	spg, err := sp.Sparsifier()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range spg.Edges() {
		if !final.Has(e) {
			t.Errorf("sparsifier edge %v not in final graph", e)
		}
	}
	for trial := 0; trial < 500; trial++ {
		mask := rng.Uint64()
		inS := func(v int) bool { return mask&(1<<uint(v)) != 0 }
		o, g := final.CutWeight(inS), spg.CutWeight(inS)
		if o == 0 && g != 0 {
			t.Fatalf("sparsifier invents cut weight")
		}
		if o > 0 {
			ratio := float64(g) / float64(o)
			if ratio < 0.3 || ratio > 1.9 {
				t.Fatalf("cut ratio %.2f out of range (o=%d g=%d)", ratio, o, g)
			}
		}
	}
}

// TestReconstructionAgainstGroundTruthFamilies reconstructs cut-degenerate
// families end to end and cross-checks light_k against both offline
// computations (recursive definition and strength decomposition).
func TestReconstructionAgainstGroundTruthFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	families := []struct {
		name string
		g    *graph.Hypergraph
		d    int
	}{
		{"paper example", workload.PaperExample(), 2},
		{"clique tree", workload.CliqueTree(rng, 4, 4), 3},
		{"grid 3x4", workload.Grid(3, 4), 2},
	}
	for _, fam := range families {
		if got := graphalg.CutDegeneracy(fam.g); got > int64(fam.d) {
			t.Fatalf("%s: cut-degeneracy %d exceeds expected %d", fam.name, got, fam.d)
		}
		s, err := reconstruct.New(reconstruct.Params{N: fam.g.N(), R: fam.g.Domain().R(), K: fam.d, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		churn := workload.ErdosRenyi(rng, fam.g.N(), 0.3)
		if err := stream.Apply(stream.WithChurn(fam.g, churn, rng), s); err != nil {
			t.Fatal(err)
		}
		got, err := s.Reconstruct()
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		if !got.Equal(fam.g) {
			t.Fatalf("%s: reconstruction differs", fam.name)
		}
	}
}

// TestStreamFileToSketchPipeline exercises the text serialization the CLI
// tools use, end to end through a sketch.
func TestStreamFileToSketchPipeline(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	final := workload.ErdosRenyi(rng, 12, 0.4)
	churn := workload.ErdosRenyi(rng, 12, 0.4)
	st := stream.WithChurn(final, churn, rng)

	var buf bytes.Buffer
	if err := stream.WriteText(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := stream.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := sketch.NewSpanning(8, final.Domain(), sketch.SpanningConfig{})
	if err := stream.Apply(back, s); err != nil {
		t.Fatal(err)
	}
	f, err := s.SpanningGraph()
	if err != nil {
		t.Fatal(err)
	}
	da, db := graphalg.ComponentsOf(final), graphalg.ComponentsOf(f)
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			if da.Same(u, v) != db.Same(u, v) {
				t.Fatal("file round-trip pipeline lost connectivity information")
			}
		}
	}
}

// TestDistributedMatchesStreaming checks the two deployment modes agree:
// the same graph processed (a) as a single-machine stream and (b) as a
// simultaneous-communication protocol decodes to identical results.
func TestDistributedMatchesStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	h := workload.PreferentialAttachment(rng, 24, 2)
	dom := h.Domain()
	cfg := sketch.SpanningConfig{}
	const seed = 44

	single := sketch.NewSpanning(seed, dom, cfg)
	if err := single.UpdateGraph(h, 1); err != nil {
		t.Fatal(err)
	}
	referee := sketch.NewSpanning(seed, dom, cfg)
	if _, err := commsim.Run(h, func() commsim.Protocol { return sketch.NewSpanning(seed, dom, cfg) }, referee); err != nil {
		t.Fatal(err)
	}
	fa, errA := single.SpanningGraph()
	fb, errB := referee.SpanningGraph()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !fa.Equal(fb) {
		t.Fatal("distributed and streaming decodes differ")
	}
}
