// Health introspection conformance: every one of the eight Checkpointer
// structures must also be an obs.Inspector whose Health() report is
// non-empty — a named structure with at least one metric — both empty and
// after ingesting a churning stream, and the report must serialize to
// deterministic JSON (the /debug/health endpoint's contract).
package graphsketch_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"graphsketch/internal/obs"
	"graphsketch/internal/plan"
	"graphsketch/internal/stream"
)

// checkReport asserts the structural invariants of one health report, then
// recurses into its nested sub-reports.
func checkReport(t *testing.T, r obs.Report) {
	t.Helper()
	if r.Structure == "" {
		t.Error("Health() report has an empty Structure name")
	}
	if len(r.Metrics) == 0 {
		t.Errorf("Health() report for %q has no metrics", r.Structure)
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: metric %q is %v (must be finite for JSON)", r.Structure, k, v)
		}
	}
	if risk, ok := r.Metrics["decode_failure_risk"]; ok && (risk < 0 || risk > 1) {
		t.Errorf("%s: decode_failure_risk = %v outside [0, 1]", r.Structure, risk)
	}
	for _, sub := range r.Subs {
		checkReport(t, sub)
	}
}

func TestAllStructuresReportHealth(t *testing.T) {
	const n = 24
	st := checkpointStream(n)
	for _, tc := range checkpointCases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(t, n, plan.Balanced)
			insp, ok := s.(obs.Inspector)
			if !ok {
				t.Fatalf("%T does not implement obs.Inspector", s)
			}
			// An empty sketch must already report coherently (a scraper can
			// hit /debug/health before the first update arrives).
			checkReport(t, insp.Health())

			if err := stream.Apply(st, s); err != nil {
				t.Fatal(err)
			}
			rep := insp.Health()
			checkReport(t, rep)

			// The endpoint serves reports as JSON; map keys sort, so two
			// encodes of the same report are byte-identical.
			b1, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("marshal health report: %v", err)
			}
			b2, err := json.Marshal(insp.Health())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("health report encoding is not deterministic:\n%s\n%s", b1, b2)
			}
		})
	}
}

// TestHealthReportsRegistry drives the registration path the CLIs use:
// registered inspectors appear in HealthReports() under their registered
// name, and unregistering removes them.
func TestHealthReportsRegistry(t *testing.T) {
	const n = 16
	st := checkpointStream(n)
	for _, tc := range checkpointCases {
		s := tc.build(t, n, plan.Balanced)
		if err := stream.Apply(st, s); err != nil {
			t.Fatal(err)
		}
		obs.RegisterInspector("conformance_"+tc.name, s.(obs.Inspector))
		defer obs.RegisterInspector("conformance_"+tc.name, nil)
	}
	reports := obs.HealthReports()
	for _, r := range reports {
		checkReport(t, r)
	}
	if len(reports) < len(checkpointCases) {
		t.Fatalf("HealthReports() returned %d reports, want >= %d", len(reports), len(checkpointCases))
	}
}
