// Checkpoint: durable and distributed stream processing via linearity.
//
// Linear sketches have two superpowers beyond deletions: their state
// serializes to bytes (checkpoint/restore), and states from *different
// machines add* (sharded ingestion). This example demonstrates both on one
// workload:
//
//  1. a stream consumer checkpoints mid-stream through the versioned wire
//     format (WriteTo emits one self-describing frame: magic, version, type
//     tag, params+seed fingerprint, state, checksum), "crashes", and a
//     fresh process resumes via codec.Open — the frame alone reconstructs
//     the sketch, no out-of-band parameters;
//
//  2. the same stream is split across three "machines" whose states are
//     merged by a coordinator — decoding the merged state gives exactly
//     the single-machine answer. (In-process the raw State/AddState bytes
//     suffice; anything durable or transported should be framed.)
//
//     go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	"graphsketch/internal/codec"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/sketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

func main() {
	rng := hashutil.NewRand(12, 34)
	final := workload.PreferentialAttachment(rng, 40, 2)
	churn := workload.ErdosRenyi(rng, 40, 0.1)
	st := stream.WithChurn(final, churn, rng)
	fmt.Printf("workload: %d vertices, %d live edges, %d stream updates\n",
		final.N(), final.EdgeCount(), len(st))

	const seed = 777 // shared public randomness for all participants
	dom := final.Domain()
	cfg := sketch.SpanningConfig{}

	// --- Part 1: checkpoint and resume ---------------------------------
	half := len(st) / 2
	first := sketch.NewSpanning(seed, dom, cfg)
	if err := stream.Apply(st[:half], first); err != nil {
		log.Fatal(err)
	}
	var checkpoint bytes.Buffer // stands in for a file on disk
	if _, err := first.WriteTo(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint after %d updates: %d framed bytes (interior %d)\n",
		half, checkpoint.Len(), len(first.State()))

	// A fresh process: the frame is self-describing, so codec.Open
	// reconstructs the sketch — parameters, seed, and state — and verifies
	// the checksum and identity fingerprint along the way. A corrupted or
	// differently-constructed frame fails with a typed codec error here
	// instead of silently decoding to garbage.
	opened, err := codec.Open(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	resumed := opened.(*sketch.SpanningSketch)
	if err := stream.Apply(st[half:], resumed); err != nil {
		log.Fatal(err)
	}
	f, err := resumed.SpanningGraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed consumer decodes a spanning graph with %d edges; connected = %v (truth: %v)\n",
		f.EdgeCount(), graphalg.Connected(f), graphalg.Connected(final))

	// --- Part 2: sharded ingestion --------------------------------------
	shards := make([]*sketch.SpanningSketch, 3)
	for i := range shards {
		shards[i] = sketch.NewSpanning(seed, dom, cfg)
	}
	for i, u := range st {
		if err := shards[i%3].Update(u.Edge, int64(u.Op)); err != nil {
			log.Fatal(err)
		}
	}
	coordinator := sketch.NewSpanning(seed, dom, cfg)
	total := 0
	for i, sh := range shards {
		state := sh.State()
		total += len(state)
		if err := coordinator.AddState(state); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged shard %d (%d bytes)\n", i, len(state))
	}
	fm, err := coordinator.SpanningGraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator decode matches single-machine decode: %v\n", fm.Equal(f))
}
