// Socialnet: monitoring the robustness of a changing social network.
//
// A community graph evolves through friend/unfriend events (a dynamic
// stream). We maintain a single vertex-connectivity sketch behind the
// query-serving oracle and answer three operational questions at
// checkpoints, without ever storing the graph:
//
//   - "Can these k moderators leaving disconnect the community?"
//     (Theorem 4 queries via Oracle.DisconnectedBy)
//   - "Are these two members in the same component right now?"
//     (Oracle.Connected — served from the epoch-cached decode, so a
//     burst of thousands of queries pays for one decode)
//   - "How many simultaneous departures can the network survive?"
//     (Theorem 8 estimation)
//
// The scenario plants a two-community structure held together by a small
// set of bridge members — the separator the sketch must find.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"

	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/oracle"
	"graphsketch/internal/workload"
)

func main() {
	// Two tight communities of 8 sharing 2 "bridge" members.
	g, err := workload.SharedCliques(8, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("community graph: %d members, %d friendships, bridges = {0, 1}\n",
		n, g.EdgeCount())

	sk, err := vertexconn.New(vertexconn.Params{N: n, K: 2, Subgraphs: 96, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	// All mutations and queries go through the oracle: mutations advance
	// its epoch, queries serve from the cached decode of the latest epoch.
	orc := oracle.ForVertexConn(sk)

	// Phase 1: the friendships arrive in random order, interleaved with
	// transient friendships that are later removed (churn).
	rng := hashutil.NewRand(20, 26)
	churn := workload.ErdosRenyi(rng, n, 0.3)
	applied := 0
	for _, e := range churn.Edges() {
		if !g.Has(e) {
			must(orc.Update(e, 1))
			applied++
		}
	}
	for _, e := range g.Edges() {
		must(orc.Update(e, 1))
		applied++
	}
	for _, e := range churn.Edges() {
		if !g.Has(e) {
			must(orc.Update(e, -1))
			applied++
		}
	}
	fmt.Printf("streamed %d events (inserts + deletes)\n", applied)

	// Question 1: are the two bridge members a single point of failure?
	disc, err := orc.DisconnectedBy([]int{0, 1})
	must(err)
	fmt.Printf("if moderators {0,1} leave, the network splits: %v\n", disc)

	// A random pair, for contrast.
	disc, err = orc.DisconnectedBy([]int{3, 9})
	must(err)
	fmt.Printf("if members {3,9} leave, the network splits: %v\n", disc)

	// Question 2: a dashboard refreshing pairwise reachability for every
	// member pair. Only the first query decodes; the rest hit the cached
	// snapshot (watch Rebuilds stay at 1 while Hits grows).
	pairs, connectedPairs := 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			ok, err := orc.Connected(u, v)
			must(err)
			pairs++
			if ok {
				connectedPairs++
			}
		}
	}
	st := orc.CacheStats()
	fmt.Printf("are_connected over all %d pairs: %d connected; cache: %d hits, %d misses, %d rebuilds\n",
		pairs, connectedPairs, st.Hits, st.Misses, st.Rebuilds)

	// Question 3: overall robustness.
	kappa, err := sk.EstimateConnectivity(2)
	must(err)
	fmt.Printf("estimated vertex connectivity (capped at 2): %d\n", kappa)
	fmt.Printf("ground truth: %d\n", graphalg.VertexConnectivity(g, 2))

	// Phase 2: a new friendship bridges the communities directly; the
	// single point of failure disappears. The mutation advances the
	// oracle's epoch (epoch %d → %d below), so the next query lazily
	// rebuilds the snapshot — the sketch just keeps streaming.
	before := orc.Epoch()
	must(orc.Update(graph.MustEdge(5, 12), 1))
	fmt.Printf("cross-community friendship {5,12} streamed: epoch %d -> %d\n", before, orc.Epoch())
	disc, err = orc.DisconnectedBy([]int{0, 1})
	must(err)
	fmt.Printf("now bridges {0,1} leaving splits the network: %v\n", disc)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
