// Socialnet: monitoring the robustness of a changing social network.
//
// A community graph evolves through friend/unfriend events (a dynamic
// stream). We maintain a single vertex-connectivity sketch and answer two
// operational questions at checkpoints, without ever storing the graph:
//
//   - "Can these k moderators leaving disconnect the community?"
//     (Theorem 4 queries)
//   - "How many simultaneous departures can the network survive?"
//     (Theorem 8 estimation)
//
// The scenario plants a two-community structure held together by a small
// set of bridge members — the separator the sketch must find.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"

	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/graphalg"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/workload"
)

func main() {
	// Two tight communities of 8 sharing 2 "bridge" members.
	g, err := workload.SharedCliques(8, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("community graph: %d members, %d friendships, bridges = {0, 1}\n",
		n, g.EdgeCount())

	sk, err := vertexconn.New(vertexconn.Params{N: n, K: 2, Subgraphs: 96, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the friendships arrive in random order, interleaved with
	// transient friendships that are later removed (churn).
	rng := hashutil.NewRand(20, 26)
	churn := workload.ErdosRenyi(rng, n, 0.3)
	applied := 0
	for _, e := range churn.Edges() {
		if !g.Has(e) {
			must(sk.Update(e, 1))
			applied++
		}
	}
	for _, e := range g.Edges() {
		must(sk.Update(e, 1))
		applied++
	}
	for _, e := range churn.Edges() {
		if !g.Has(e) {
			must(sk.Update(e, -1))
			applied++
		}
	}
	fmt.Printf("streamed %d events (inserts + deletes)\n", applied)

	// Question 1: are the two bridge members a single point of failure?
	disc, err := sk.Disconnects(map[int]bool{0: true, 1: true})
	must(err)
	fmt.Printf("if moderators {0,1} leave, the network splits: %v\n", disc)

	// A random pair, for contrast.
	disc, err = sk.Disconnects(map[int]bool{3: true, 9: true})
	must(err)
	fmt.Printf("if members {3,9} leave, the network splits: %v\n", disc)

	// Question 2: overall robustness.
	kappa, err := sk.EstimateConnectivity(2)
	must(err)
	fmt.Printf("estimated vertex connectivity (capped at 2): %d\n", kappa)
	fmt.Printf("ground truth: %d\n", graphalg.VertexConnectivity(g, 2))

	// Phase 2: a new friendship bridges the communities directly;
	// the single point of failure disappears. The sketch just keeps
	// streaming.
	must(sk.Update(graph.MustEdge(5, 12), 1))
	disc, err = sk.Disconnects(map[int]bool{0: true, 1: true})
	must(err)
	fmt.Printf("after a direct cross-community friendship {5,12}: bridges {0,1} leaving splits the network: %v\n", disc)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
