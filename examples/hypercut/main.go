// Hypercut: sparsifying a hypergraph workload for load balancing.
//
// In hypergraph-partitioning models of parallel sparse matrix–vector
// multiplication (Çatalyürek–Aykanat — one of the applications the paper
// cites), each row of the matrix is a hyperedge over the columns it
// touches, and the communication volume of a partition is a hypergraph
// cut. The matrix structure changes as the simulation evolves — a dynamic
// hyperedge stream.
//
// This example streams such a workload (with updates and retractions)
// through the Theorem 19/20 sparsifier sketch, then compares partition
// costs evaluated on the sparsifier against the true hypergraph: the
// sparsifier preserves every cut to within the target factor while storing
// a fraction of the hyperedges.
//
//	go run ./examples/hypercut
package main

import (
	"fmt"
	"log"
	"math"

	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/hashutil"
	"graphsketch/internal/oracle"
	"graphsketch/internal/stream"
	"graphsketch/internal/workload"
)

func main() {
	const (
		n = 20 // columns (vertices)
		r = 3  // nonzeros per row (hyperedge cardinality)
	)
	rng := hashutil.NewRand(7, 42)

	// The "final" sparsity structure: two dense blocks (natural partition)
	// plus a few coupling rows; plus heavy churn from structure updates.
	final := workload.PlantedCutHypergraph(rng, n, r, 60, 4)
	churn := workload.UniformHypergraph(rng, n, r, 80)
	st := stream.WithChurn(final, churn, rng)
	fmt.Printf("matrix stream: %d row updates, %d live rows at the end\n",
		len(st), final.EdgeCount())

	sk, err := sparsify.New(sparsify.Params{N: n, R: r, K: 8, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.Apply(st, sk); err != nil {
		log.Fatal(err)
	}
	sp, err := sk.Sparsifier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d weighted rows kept out of %d (%.0f%%)\n",
		sp.EdgeCount(), final.EdgeCount(),
		100*float64(sp.EdgeCount())/float64(final.EdgeCount()))

	// Evaluate candidate partitions on both: the planted block partition
	// and a few random ones.
	parts := []struct {
		name string
		inS  func(v int) bool
	}{
		{"planted blocks", func(v int) bool { return v < n/2 }},
		{"odd/even", func(v int) bool { return v%2 == 0 }},
	}
	for i := 0; i < 3; i++ {
		mask := rng.Uint64()
		parts = append(parts, struct {
			name string
			inS  func(v int) bool
		}{fmt.Sprintf("random #%d", i+1), func(v int) bool { return mask&(1<<uint(v)) != 0 }})
	}

	fmt.Println("\npartition            true cut   sparsifier cut   rel.err")
	for _, p := range parts {
		trueCut := final.CutWeight(p.inS)
		spCut := sp.CutWeight(p.inS)
		relErr := 0.0
		if trueCut > 0 {
			relErr = math.Abs(float64(spCut)-float64(trueCut)) / float64(trueCut)
		}
		fmt.Printf("%-20s %8d   %14d   %7.3f\n", p.name, trueCut, spCut, relErr)
	}
	fmt.Println("\nthe planted block partition has the smallest cut on both — the\nsparsifier can stand in for the full structure during partitioning.")

	// Connectivity questions ("do columns u and v ever appear in a row
	// chain together?") go through the oracle: the sparsifier preserves
	// every cut within the target factor, so a zero cut — disconnection —
	// is preserved exactly, and the oracle's cached decode answers each
	// pair without re-running the sparsifier pipeline.
	orc := oracle.ForSparsify(sk)
	ok, err := orc.Connected(0, n-1)
	if err != nil {
		log.Fatal(err)
	}
	cs := orc.CacheStats()
	fmt.Printf("\ncolumns 0 and %d share a row chain: %v (answered from cache: %d rebuild)\n",
		n-1, ok, cs.Rebuilds)
}
