// Quickstart: a 60-second tour of the library.
//
// We stream a small dynamic graph — inserts and deletes — into three
// sketches (connectivity, vertex-connectivity queries, sparsifier) and
// decode each. Every sketch sees only the stream, never the graph, and
// every sketch implements the one graphsketch.Sketch interface, so the
// parallel ingestion engine drives them all the same way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphsketch"
	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/engine"
	"graphsketch/internal/graph"
	"graphsketch/internal/sketch"
)

func main() {
	const n = 10

	// Three one-pass sketches over the same stream. Every constructor
	// takes a Params struct; zero fields get sound defaults.
	conn, err := sketch.NewSpanningSketch(sketch.SpanningParams{N: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	vc, err := vertexconn.New(vertexconn.Params{N: n, K: 1, Subgraphs: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := sparsify.New(sparsify.Params{N: n, K: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The stream: build two triangles, bridge them, then delete the
	// scaffolding edge we regret.
	upd := func(delta int64, u, v int) graph.WeightedEdge {
		return graph.WeightedEdge{E: graph.MustEdge(u, v), W: delta}
	}
	stream := []graph.WeightedEdge{
		upd(+1, 0, 1),
		upd(+1, 1, 2),
		upd(+1, 0, 2),
		upd(+1, 5, 6),
		upd(+1, 6, 7),
		upd(+1, 5, 7),
		upd(+1, 2, 5), // the bridge
		upd(+1, 0, 7), // scaffolding ...
		upd(-1, 0, 7), // ... deleted: linear sketches just subtract
	}

	// Every sketch is graphsketch.Sharded — edge updates decompose by
	// endpoint — so the engine ingests each batch with one lock-free
	// worker per vertex range.
	for _, s := range []graphsketch.Sharded{conn, vc, sp} {
		eng := engine.New(s, engine.Options{})
		if err := eng.UpdateBatch(stream); err != nil {
			log.Fatal(err)
		}
		eng.Close()
	}

	// 1. Connectivity (vertices 3,4,8,9 are isolated, so: not connected).
	ok, err := conn.Connected()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected over all %d vertices: %v (vertices 3,4,8,9 are isolated)\n", n, ok)

	comps, err := conn.Components()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d\n", comps.Components())

	// 2. Vertex-connectivity query: is {2} a cut vertex?
	disc, err := vc.Disconnects(map[int]bool{2: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removing vertex 2 disconnects the two triangles: %v\n", disc)

	// 3. Sparsifier: at K above the graph's strength it reproduces the
	// graph exactly.
	sparse, err := sp.Sparsifier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d weighted edges (stream had 7 live edges)\n", sparse.EdgeCount())
	for _, we := range sparse.WeightedEdges() {
		fmt.Printf("  weight %d  %v\n", we.W, we.E)
	}
}
