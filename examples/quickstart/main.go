// Quickstart: a 60-second tour of the library.
//
// We stream a small dynamic graph — inserts and deletes — into three
// sketches (connectivity, vertex-connectivity queries, sparsifier) and
// decode each. Every sketch sees only the stream, never the graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphsketch/internal/core/sparsify"
	"graphsketch/internal/core/vertexconn"
	"graphsketch/internal/graph"
	"graphsketch/internal/sketch"
)

func main() {
	const n = 10
	dom := graph.MustDomain(n, 2)

	// Three one-pass sketches over the same stream.
	conn := sketch.NewSpanning(7, dom, sketch.SpanningConfig{})
	vc, err := vertexconn.New(vertexconn.Params{N: n, K: 1, Subgraphs: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := sparsify.New(sparsify.Params{N: n, K: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sinks := []interface {
		Update(e graph.Hyperedge, delta int64) error
	}{conn, vc, sp}

	update := func(delta int64, vs ...int) {
		e := graph.MustEdge(vs...)
		for _, s := range sinks {
			if err := s.Update(e, delta); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The stream: build two triangles, bridge them, then delete the
	// scaffolding edge we regret.
	update(+1, 0, 1)
	update(+1, 1, 2)
	update(+1, 0, 2)
	update(+1, 5, 6)
	update(+1, 6, 7)
	update(+1, 5, 7)
	update(+1, 2, 5) // the bridge
	update(+1, 0, 7) // scaffolding ...
	update(-1, 0, 7) // ... deleted: linear sketches just subtract

	// 1. Connectivity (vertices 3,4,8,9 are isolated, so: not connected).
	ok, err := conn.Connected()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected over all %d vertices: %v (vertices 3,4,8,9 are isolated)\n", n, ok)

	comps, err := conn.Components()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d\n", comps.Components())

	// 2. Vertex-connectivity query: is {2} a cut vertex?
	disc, err := vc.Disconnects(map[int]bool{2: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removing vertex 2 disconnects the two triangles: %v\n", disc)

	// 3. Sparsifier: at K above the graph's strength it reproduces the
	// graph exactly.
	sparse, err := sp.Sparsifier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d weighted edges (stream had 7 live edges)\n", sparse.EdgeCount())
	for _, we := range sparse.WeightedEdges() {
		fmt.Printf("  weight %d  %v\n", we.W, we.E)
	}
}
