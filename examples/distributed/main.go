// Distributed: the simultaneous communication model in action.
//
// The paper frames its sketches in the model of Becker et al. (Section 2):
// every vertex is a player holding only its incident edges, all players
// share public random bits, each sends ONE message to a referee, and the
// referee must answer from the messages alone. Because the sketches are
// vertex-based and linear, player v's message is just vertex v's serialized
// share of the sketch.
//
// This example reconstructs the paper's own Lemma 10 example graph — the
// 8-vertex graph that is 2-cut-degenerate but NOT 2-degenerate — at the
// referee, from eight small messages. The Becker et al. protocol it
// generalizes cannot reconstruct this graph with a degree-2 budget, which
// is precisely the gap Theorem 15 closes.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"graphsketch/internal/commsim"
	"graphsketch/internal/core/reconstruct"
	"graphsketch/internal/workload"
)

func main() {
	g := workload.PaperExample()
	fmt.Printf("input: the paper's Lemma 10 graph — n=%d, m=%d, min degree 3, cut-degeneracy 2\n",
		g.N(), g.EdgeCount())

	const seed = 1515 // the shared public randomness
	p := reconstruct.Params{N: g.N(), K: 2, Seed: seed}

	referee, err := reconstruct.New(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := commsim.Run(g,
		func() commsim.Protocol {
			s, err := reconstruct.New(p)
			if err != nil {
				log.Fatal(err)
			}
			return s
		},
		referee)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d players sent one message each: max %d bytes, mean %.0f bytes\n",
		res.Players, res.MaxMessageBytes, res.MeanMessageBytes())

	got, err := referee.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("referee reconstructed %d edges; exact match: %v\n",
		got.EdgeCount(), got.Equal(g))

	// Contrast: the Becker et al. d-degenerate protocol at the same budget
	// (d = 2) stalls on this graph — its peeling needs a vertex of degree
	// ≤ 2 and there is none.
	bReferee := reconstruct.NewBecker(seed, g.N(), 2, 1)
	bRes, err := commsim.Run(g,
		func() commsim.Protocol { return reconstruct.NewBecker(seed, g.N(), 2, 1) },
		bReferee)
	if err != nil {
		log.Fatal(err)
	}
	_, bErr := bReferee.Reconstruct()
	fmt.Printf("Becker baseline at the same d=2 budget (max msg %d bytes): %v\n",
		bRes.MaxMessageBytes, bErr)
}
